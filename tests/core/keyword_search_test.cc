// End-to-end keyword (inverted-index) search: exact boolean AND/OR matches
// with in-situ verification, query-term normalization and validation, the
// planner's uncovered-file accounting, maintenance byte-identity at any
// parallelism (the PR 3 contract extended to the fourth index type), and
// the unified Query API — direct SearchKeyword, typed Execute and the
// serving engine must return byte-identical results with identical traced
// I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/object_store.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "serve/query_engine.h"

namespace rottnest::core {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;

constexpr uint32_t kDim = 16;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  s.columns.push_back({"body", PhysicalType::kByteArray, 0});
  s.columns.push_back({"vec", PhysicalType::kFixedLenByteArray, kDim * 4});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0x77aa55);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

RottnestOptions Options() {
  RottnestOptions options;
  options.index_dir = "idx/kw";
  options.index_timeout_micros = 600LL * 1'000'000;
  return options;
}

format::WriterOptions WriterOpts() {
  format::WriterOptions w;
  w.target_page_bytes = 1024;
  w.target_row_group_bytes = 8 << 10;
  return w;
}

/// Body text "row <id> token<id%7> payload": every row carries the shared
/// terms "row"/"payload", its own id as a token, and one of seven rotating
/// token<M> terms — known exact answer sets for AND and OR.
void AppendRows(Table* table, uint64_t first_id, size_t rows) {
  RowBatch b;
  b.schema = MakeSchema();
  format::FlatFixed uuids;
  uuids.elem_size = 16;
  ColumnVector::Strings bodies;
  format::FlatFixed vecs;
  vecs.elem_size = kDim * 4;
  for (size_t i = 0; i < rows; ++i) {
    uint64_t id = first_id + i;
    std::string u = UuidFor(id);
    uuids.Append(Slice(u));
    bodies.push_back("row " + std::to_string(id) + " token" +
                     std::to_string(id % 7) + " payload");
    std::vector<float> v(kDim, static_cast<float>(id % 8));
    vecs.Append(Slice(reinterpret_cast<const uint8_t*>(v.data()), kDim * 4));
  }
  b.columns.emplace_back(std::move(uuids));
  b.columns.emplace_back(std::move(bodies));
  b.columns.emplace_back(std::move(vecs));
  ASSERT_TRUE(table->Append(b).ok());
}

struct World {
  SimulatedClock clock;
  InMemoryObjectStore store{&clock};
  std::unique_ptr<Table> table;
  std::unique_ptr<Rottnest> client;
  uint64_t total_rows = 0;

  World() {
    table = Table::Create(&store, "lake/kw", MakeSchema(), WriterOpts())
                .MoveValue();
    client = std::make_unique<Rottnest>(&store, table.get(), Options());
  }

  void Append(size_t rows) {
    AppendRows(table.get(), total_rows, rows);
    total_rows += rows;
  }

  Buffer ObjectBytes(const std::string& key) {
    Buffer b;
    EXPECT_TRUE(store.Get(key, &b).ok()) << key;
    return b;
  }

  /// The ids the dataset's construction says match: every term must be one
  /// of "row"/"payload"/"token<M>"/"<id>".
  std::set<uint64_t> ExpectedIds(const std::vector<std::string>& terms,
                                 bool require_all) const {
    std::set<uint64_t> out;
    for (uint64_t id = 0; id < total_rows; ++id) {
      std::set<std::string> row_terms = {"row", "payload",
                                         "token" + std::to_string(id % 7),
                                         std::to_string(id)};
      bool all = true, any = false;
      for (const std::string& t : terms) {
        bool has = row_terms.count(t) != 0;
        all = all && has;
        any = any || has;
      }
      if (require_all ? all : any) out.insert(id);
    }
    return out;
  }
};

std::set<uint64_t> MatchedIds(const SearchResult& r) {
  std::set<uint64_t> ids;
  for (const RowMatch& m : r.matches) {
    // "row <id> ..." — recover the id from the matched value.
    size_t sp = m.value.find(' ', 4);
    ids.insert(std::stoull(m.value.substr(4, sp - 4)));
  }
  return ids;
}

TEST(KeywordSearchTest, AndFindsExactlyTheRowsWithAllTerms) {
  World w;
  w.Append(200);
  w.Append(200);
  ASSERT_TRUE(w.client->Index("body", IndexType::kKeyword).ok());

  auto r = w.client->SearchKeyword("body", {"token3"}, 1000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(MatchedIds(r.value()), w.ExpectedIds({"token3"}, true));
  EXPECT_EQ(r.value().stats.uncovered_files, 0u);
  EXPECT_GT(r.value().pages_probed, 0u);
  EXPECT_EQ(r.value().files_scanned, 0u);

  // AND with a shared term narrows nothing; AND of two disjoint rotating
  // terms is provably empty.
  auto both = w.client->SearchKeyword("body", {"token3", "payload"}, 1000);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(MatchedIds(both.value()), w.ExpectedIds({"token3"}, true));
  auto none = w.client->SearchKeyword("body", {"token3", "token4"}, 1000);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().matches.empty());

  // A term unique to one row.
  auto one = w.client->SearchKeyword("body", {"271", "payload"}, 10);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(MatchedIds(one.value()), (std::set<uint64_t>{271}));
}

TEST(KeywordSearchTest, OrUnionsTheTermSets) {
  World w;
  w.Append(300);
  ASSERT_TRUE(w.client->Index("body", IndexType::kKeyword).ok());
  SearchOptions opts;
  opts.params.keyword.mode = KeywordMode::kOr;
  auto r =
      w.client->SearchKeyword("body", {"token2", "token5", "absent"}, 1000,
                              opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(MatchedIds(r.value()),
            w.ExpectedIds({"token2", "token5"}, false));
}

TEST(KeywordSearchTest, QueryTermsAreNormalizedLikeTheBuild) {
  World w;
  w.Append(100);
  ASSERT_TRUE(w.client->Index("body", IndexType::kKeyword).ok());
  // Case and surrounding punctuation normalize away; duplicates collapse.
  auto r =
      w.client->SearchKeyword("body", {"  Token3! ", "token3", "PAYLOAD"},
                              1000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(MatchedIds(r.value()), w.ExpectedIds({"token3"}, true));
}

TEST(KeywordSearchTest, MalformedQueriesFailTyped) {
  World w;
  w.Append(50);
  ASSERT_TRUE(w.client->Index("body", IndexType::kKeyword).ok());
  // No terms (typed path), a multi-word term, a punctuation-only term, and
  // a query over the max_terms cap all fail InvalidArgument.
  auto none = w.client->Execute(
      Query::MakeKeyword("body", {}, KeywordMode::kAnd, 10));
  ASSERT_FALSE(none.ok());
  EXPECT_TRUE(none.status().IsInvalidArgument());
  for (const std::string& bad : {std::string("two words"), std::string("?!"),
                                 std::string()}) {
    auto r = w.client->SearchKeyword("body", {bad}, 10);
    ASSERT_FALSE(r.ok()) << "'" << bad << "'";
    EXPECT_TRUE(r.status().IsInvalidArgument());
  }
  SearchOptions tight;
  tight.params.keyword.max_terms = 2;
  auto over =
      w.client->SearchKeyword("body", {"token1", "token2", "token3"}, 10,
                              tight);
  ASSERT_FALSE(over.ok());
  EXPECT_TRUE(over.status().IsInvalidArgument());
  // Exactly at the cap (after dedup) is fine.
  auto at = w.client->SearchKeyword("body", {"token1", "token1", "payload"},
                                    10, tight);
  EXPECT_TRUE(at.ok()) << at.status().ToString();
}

TEST(KeywordSearchTest, UncoveredFilesAreCountedAndScanned) {
  World w;
  w.Append(100);
  w.Append(100);
  obs::MetricsRegistry registry;
  obs::ObsContext ctx;
  ctx.metrics = &registry;
  SearchOptions opts;
  opts.obs = &ctx;

  // No keyword index yet: both data files are uncovered; the brute-scan
  // fallback still answers exactly.
  auto r = w.client->SearchKeyword("body", {"token6"}, 1000, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().stats.uncovered_files, 2u);
  EXPECT_EQ(registry.GetCounter("op.search.uncovered_files")->value(), 2u);
  EXPECT_EQ(r.value().indexes_queried, 0u);
  EXPECT_EQ(r.value().files_scanned, 2u);
  EXPECT_EQ(MatchedIds(r.value()), w.ExpectedIds({"token6"}, true));

  // Indexing clears the signal (and stops incrementing the counter).
  ASSERT_TRUE(w.client->Index("body", IndexType::kKeyword).ok());
  auto covered = w.client->SearchKeyword("body", {"token6"}, 1000, opts);
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(covered.value().stats.uncovered_files, 0u);
  EXPECT_EQ(registry.GetCounter("op.search.uncovered_files")->value(), 2u);
  EXPECT_EQ(MatchedIds(covered.value()), w.ExpectedIds({"token6"}, true));
}

// ---------------------------------------------------------------------------
// Maintenance determinism, mirroring maintenance_test.cc: the keyword index
// emits byte-identical objects at any parallelism and byte budget, for both
// Index and Compact.
// ---------------------------------------------------------------------------

TEST(KeywordSearchTest, IndexByteIdenticalAtAnyParallelism) {
  World w;
  w.Append(200);
  w.Append(200);
  auto rebuild = [&](size_t parallelism, uint64_t byte_budget) -> Buffer {
    MaintenanceOptions opts;
    opts.parallelism = parallelism;
    opts.byte_budget = byte_budget;
    auto r = w.client->Index("body", IndexType::kKeyword, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok() || r.value().index_path.empty()) return Buffer();
    Buffer bytes = w.ObjectBytes(r.value().index_path);
    EXPECT_TRUE(w.client->metadata().Update({}, {r.value().index_path}).ok());
    EXPECT_TRUE(w.store.Delete(r.value().index_path).ok());
    return bytes;
  };
  Buffer serial = rebuild(1, 0);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, rebuild(2, 0));
  EXPECT_EQ(serial, rebuild(8, 0));
  EXPECT_EQ(serial, rebuild(8, 1));
}

TEST(KeywordSearchTest, CompactByteIdenticalAtAnyParallelism) {
  World w;
  for (int round = 0; round < 3; ++round) {
    w.Append(150);
    ASSERT_TRUE(w.client->Index("body", IndexType::kKeyword).ok());
    w.clock.Advance(1'000'000);
  }
  auto recompact = [&](size_t parallelism, uint64_t byte_budget) -> Buffer {
    auto before = w.client->metadata().ReadAll();
    EXPECT_TRUE(before.ok());
    MaintenanceOptions opts;
    opts.parallelism = parallelism;
    opts.byte_budget = byte_budget;
    auto c = w.client->Compact("body", IndexType::kKeyword, opts);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    if (!c.ok() || c.value().merged_path.empty()) return Buffer();
    EXPECT_EQ(c.value().replaced.size(), 3u);
    Buffer bytes = w.ObjectBytes(c.value().merged_path);
    std::vector<lake::IndexEntry> readd;
    for (const lake::IndexEntry& e : before.value()) {
      if (std::find(c.value().replaced.begin(), c.value().replaced.end(),
                    e.index_path) != c.value().replaced.end()) {
        readd.push_back(e);
      }
    }
    EXPECT_EQ(readd.size(), 3u);
    EXPECT_TRUE(
        w.client->metadata().Update(readd, {c.value().merged_path}).ok());
    EXPECT_TRUE(w.store.Delete(c.value().merged_path).ok());
    return bytes;
  };
  Buffer serial = recompact(1, 0);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, recompact(2, 0));
  EXPECT_EQ(serial, recompact(8, 0));
  EXPECT_EQ(serial, recompact(8, 1));
}

TEST(KeywordSearchTest, CompactedIndexAnswersLikeTheInputs) {
  World w;
  for (int round = 0; round < 3; ++round) {
    w.Append(120);
    ASSERT_TRUE(w.client->Index("body", IndexType::kKeyword).ok());
    w.clock.Advance(1'000'000);
  }
  auto before = w.client->SearchKeyword("body", {"token5"}, 1000);
  ASSERT_TRUE(before.ok());
  auto c = w.client->Compact("body", IndexType::kKeyword);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c.value().replaced.size(), 3u);
  auto after = w.client->SearchKeyword("body", {"token5"}, 1000);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(MatchedIds(after.value()), MatchedIds(before.value()));
  EXPECT_EQ(after.value().indexes_queried, 1u);
  auto latest = w.table->GetSnapshot();
  ASSERT_TRUE(latest.ok());
  ASSERT_TRUE(w.client->Vacuum(latest.value().version).ok());
  EXPECT_TRUE(w.client->CheckInvariants().ok());
  auto vacuumed = w.client->SearchKeyword("body", {"token5"}, 1000);
  ASSERT_TRUE(vacuumed.ok());
  EXPECT_EQ(MatchedIds(vacuumed.value()), MatchedIds(before.value()));
}

// ---------------------------------------------------------------------------
// Unified API: direct wrapper, typed Execute and the serving engine return
// byte-identical results with identical traced I/O.
// ---------------------------------------------------------------------------

TEST(KeywordSearchTest, ExecuteAndEngineMatchDirectExactly) {
  World w;
  w.Append(200);
  w.Append(200);
  ASSERT_TRUE(w.client->Index("body", IndexType::kKeyword).ok());

  struct Traced {
    SearchResult result;
    uint64_t gets = 0;
    uint64_t bytes = 0;
  };
  auto run = [&](auto&& call) -> Traced {
    IoTrace trace;
    SearchOptions opts;
    opts.trace = &trace;
    opts.params.keyword.mode = KeywordMode::kOr;
    Result<SearchResult> r = call(opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return {};
    return {std::move(r).value(), trace.total_gets(), trace.total_bytes()};
  };
  const std::vector<std::string> terms = {"token1", "token4"};

  Traced direct = run([&](const SearchOptions& opts) {
    return w.client->SearchKeyword("body", terms, 500, opts);
  });
  Traced typed = run([&](const SearchOptions& opts) {
    auto resp = w.client->Execute(
        Query::MakeKeyword("body", terms, KeywordMode::kOr, 500, opts));
    if (!resp.ok()) return Result<SearchResult>(resp.status());
    return Result<SearchResult>(std::move(resp.value().result));
  });
  serve::QueryEngine engine(w.client.get(), serve::ServeOptions{});
  Traced served = run([&](const SearchOptions& opts) {
    auto resp = engine.Execute(
        Query::MakeKeyword("body", terms, KeywordMode::kOr, 500, opts));
    if (!resp.ok()) return Result<SearchResult>(resp.status());
    return Result<SearchResult>(std::move(resp.value().result));
  });

  ASSERT_FALSE(direct.result.matches.empty());
  EXPECT_EQ(MatchedIds(direct.result),
            w.ExpectedIds({"token1", "token4"}, false));
  for (const Traced* other : {&typed, &served}) {
    ASSERT_EQ(other->result.matches.size(), direct.result.matches.size());
    for (size_t i = 0; i < direct.result.matches.size(); ++i) {
      EXPECT_EQ(other->result.matches[i].file, direct.result.matches[i].file);
      EXPECT_EQ(other->result.matches[i].row, direct.result.matches[i].row);
      EXPECT_EQ(other->result.matches[i].value,
                direct.result.matches[i].value);
    }
    EXPECT_EQ(other->result.indexes_queried, direct.result.indexes_queried);
    EXPECT_EQ(other->result.pages_probed, direct.result.pages_probed);
    // Exact IoTrace reconciliation: all three paths are the same planner
    // and the same reads — request and byte totals must agree exactly.
    EXPECT_EQ(other->gets, direct.gets);
    EXPECT_EQ(other->bytes, direct.bytes);
  }
}

}  // namespace
}  // namespace rottnest::core
