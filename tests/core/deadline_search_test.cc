// End-to-end tail-tolerance tests for the query path:
//   * an expired time budget returns a STRUCTURED partial result (OK
//     status, partial=true, cut_short populated) — never a hang, never a
//     bare error;
//   * an unavailable store (outage / open breaker verdict) cuts the
//     affected index children short with NO brute-scan fallback;
//   * CountSubstring has no partial surface: exact or error;
//   * admission control sheds overload with typed ResourceExhausted,
//     observed through the closed-loop multi-client driver;
//   * concurrent deadline-expired searches are race-free (TSAN).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/fault_injection.h"
#include "serve/query_engine.h"
#include "workload/driver.h"

namespace rottnest::core {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::BrownOut;
using objectstore::FaultInjectingStore;
using objectstore::InMemoryObjectStore;
using objectstore::SimulatedSleeper;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  s.columns.push_back({"body", PhysicalType::kByteArray, 0});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0xabcdef);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

RottnestOptions Options() {
  RottnestOptions options;
  options.index_dir = "idx/t";
  options.fm.block_size = 2048;
  options.fm.sample_rate = 8;
  return options;
}

/// A lake whose every store operation flows through a FaultInjectingStore,
/// so tests can inject latency (advancing the SimulatedClock through the
/// injected sleeper — wall-instant) and outages around the search path.
struct World {
  SimulatedClock clock;
  InMemoryObjectStore mem{&clock};
  FaultInjectingStore store{&mem};
  std::unique_ptr<Table> table;

  explicit World(bool simulated_sleep = true) {
    if (simulated_sleep) store.SetSleeper(SimulatedSleeper(&clock));
    format::WriterOptions w;
    w.target_page_bytes = 2048;
    w.target_row_group_bytes = 32 << 10;
    table = Table::Create(&store, "lake/t", MakeSchema(), w).MoveValue();
  }

  void Append(uint64_t first_id, size_t rows) {
    RowBatch b;
    b.schema = MakeSchema();
    format::FlatFixed uuids;
    uuids.elem_size = 16;
    ColumnVector::Strings bodies;
    for (size_t i = 0; i < rows; ++i) {
      uint64_t id = first_id + i;
      std::string u = UuidFor(id);
      uuids.Append(Slice(u));
      bodies.push_back("row " + std::to_string(id) + " token" +
                       std::to_string(id % 7) + " payload");
    }
    b.columns.emplace_back(std::move(uuids));
    b.columns.emplace_back(std::move(bodies));
    ASSERT_TRUE(table->Append(b).ok());
  }

  /// Two files, each indexed for uuid (trie) and body (FM).
  void Build(Rottnest* client) {
    for (size_t f = 0; f < 2; ++f) {
      Append(f * 200, 200);
      ASSERT_TRUE(client->Index("uuid", IndexType::kTrie).ok());
      ASSERT_TRUE(client->Index("body", IndexType::kFm).ok());
    }
  }

  /// From now on every store op costs `extra` on the (simulated) clock.
  void SlowEverything(Micros extra) {
    store.AddBrownOut(BrownOut{clock.NowMicros(),
                               clock.NowMicros() + 100LL * 365 * 86'400 *
                                   1'000'000,
                               "", extra});
  }
};

TEST(DeadlineSearchTest, ExpiredBudgetReturnsStructuredPartial) {
  World w;
  Rottnest client(&w.store, w.table.get(), Options());
  w.Build(&client);
  // Every store op now advances the clock 2ms; a 1ms budget is exceeded
  // during planning I/O, so every downstream phase observes expiry.
  w.SlowEverything(2'000);

  SearchOptions opts;
  opts.time_budget_micros = 1'000;
  std::string u = UuidFor(42);
  auto r = client.SearchUuid("uuid", Slice(u), 5, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // Partial, NOT an error.
  EXPECT_TRUE(r.value().partial);
  EXPECT_FALSE(r.value().cut_short.empty());
  EXPECT_FALSE(r.value().partial_reason.empty());
  // Cut-short children get no brute-scan fallback (the deadline is the
  // promise not to keep going) and do not count as queried.
  EXPECT_EQ(r.value().files_scanned, 0u);
  EXPECT_EQ(r.value().indexes_queried, 0u);

  auto sub = client.SearchSubstring("body", "token3", 100, opts);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_TRUE(sub.value().partial);
}

TEST(DeadlineSearchTest, NoBudgetMeansNoDeadline) {
  World w;
  Rottnest client(&w.store, w.table.get(), Options());
  w.Build(&client);
  w.SlowEverything(2'000);  // Slow, but nobody is counting.

  std::string u = UuidFor(42);
  auto r = client.SearchUuid("uuid", Slice(u), 5);  // Default budget: none.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().partial);
  EXPECT_TRUE(r.value().cut_short.empty());
  ASSERT_EQ(r.value().matches.size(), 1u);
  EXPECT_EQ(r.value().matches[0].row, 42u);
}

TEST(DeadlineSearchTest, GenerousBudgetIsAFullResult) {
  World w;
  Rottnest client(&w.store, w.table.get(), Options());
  w.Build(&client);
  w.SlowEverything(10);

  SearchOptions opts;
  opts.time_budget_micros = 60LL * 1'000'000;  // Far beyond the query cost.
  std::string u = UuidFor(123);
  auto r = client.SearchUuid("uuid", Slice(u), 5, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().partial);
  ASSERT_EQ(r.value().matches.size(), 1u);
}

TEST(DeadlineSearchTest, UnavailableIndexReadsCutShortNotFail) {
  World w;
  Rottnest client(&w.store, w.table.get(), Options());
  w.Build(&client);
  // Simulate an outage (or an open circuit breaker's fail-fast verdict,
  // which is the same typed Unavailable) for index objects only — the
  // planner's metadata reads stay healthy.
  w.store.SetFailurePoint([](const std::string& op, const std::string& key) {
    bool read = op == "get" || op == "head";
    if (read && key.size() >= 6 &&
        key.compare(key.size() - 6, 6, ".index") == 0) {
      return Status::Unavailable("circuit breaker open");
    }
    return Status::OK();
  });

  std::string u = UuidFor(7);
  auto r = client.SearchUuid("uuid", Slice(u), 5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().partial);
  EXPECT_EQ(r.value().cut_short.size(), 2u);  // Both trie index children.
  // UNLIKE corrupt-index degradation there is no brute-scan fallback:
  // unavailability is (possibly) transient, and scanning every covered
  // file would turn one slow store into a thundering herd.
  EXPECT_EQ(r.value().files_scanned, 0u);
  EXPECT_EQ(r.value().indexes_degraded, 0u);
  EXPECT_EQ(r.value().indexes_queried, 0u);
}

TEST(DeadlineSearchTest, CountSubstringIsExactOrError) {
  World w;
  Rottnest client(&w.store, w.table.get(), Options());
  w.Build(&client);
  auto expected = client.CountSubstring("body", "token5");
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected.value(), 0u);

  // A count has no partial-result surface, so the budget is deliberately
  // ignored: the same exact answer comes back even when searches would
  // have been cut short.
  w.SlowEverything(2'000);
  SearchOptions opts;
  opts.time_budget_micros = 1'000;
  auto counted = client.CountSubstring("body", "token5", opts);
  ASSERT_TRUE(counted.ok()) << counted.status().ToString();
  EXPECT_EQ(counted.value(), expected.value());
}

TEST(DeadlineSearchTest, AdmissionShedsOverloadThroughClosedLoop) {
  // REAL sleeper here: searches must occupy wall time so closed-loop
  // clients genuinely contend for the single slot. Admission moved from the
  // client into the serving layer, so overload is now exercised through a
  // QueryEngine (direct Search* calls are unadmitted).
  World w(/*simulated_sleep=*/false);
  Rottnest client(&w.store, w.table.get(), Options());
  w.Build(&client);
  w.SlowEverything(2'000);  // ~2ms of real wall per store op.

  serve::ServeOptions sopts;
  sopts.max_concurrent = 1;
  sopts.max_queue = 0;  // No waiting room: contention sheds.
  sopts.batch_max = 1;
  serve::QueryEngine engine(&client, sopts);

  workload::DriverOptions dopts;
  dopts.clients = 4;
  dopts.requests_per_client = 4;
  workload::DriverReport report =
      workload::RunClosedLoop(dopts, [&](int, int) -> Result<bool> {
        auto r = engine.Execute(Query::Uuid("uuid", UuidFor(42), 5));
        ROTTNEST_RETURN_NOT_OK(r.status());
        return r.value().result.partial;
      });

  EXPECT_EQ(report.total(), 16u);
  EXPECT_EQ(report.errors, 0u);  // Sheds are typed, never generic errors.
  EXPECT_GE(report.ok, 1u);      // The slot holder completes normally.
  EXPECT_GE(report.shed, 1u);    // Contenders are refused, instantly.
  const AdmissionStats& stats = engine.admission().admission_stats();
  EXPECT_EQ(stats.shed_queue_full.load(), report.shed);
  EXPECT_EQ(stats.admitted.load(), report.ok + report.partial);
  EXPECT_EQ(engine.stats().shed.load(), report.shed);
  // A shed answer is cheap: it must not cost anything like a search.
  EXPECT_EQ(engine.admission().running(), 0);
}

// TSAN: deadline-expired fan-outs from many threads at once. The pool
// tasks observe cancellation cooperatively; losers must leave no detached
// work touching freed per-query state (results vector, trace, statuses).
TEST(DeadlineSearchTest, ConcurrentExpiredSearchesAreRaceFree) {
  World w;
  Rottnest client(&w.store, w.table.get(), Options());
  w.Build(&client);
  w.SlowEverything(2'000);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 6; ++i) {
        SearchOptions opts;
        // Alternate expired and unlimited budgets so cut-short and full
        // queries interleave on the shared pool.
        opts.time_budget_micros = (i % 2 == 0) ? 1'000 : 0;
        std::string u = UuidFor(static_cast<uint64_t>(t * 100 + i));
        auto r = client.SearchUuid("uuid", Slice(u), 5, opts);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace rottnest::core
