// End-to-end observability tests (DESIGN.md §4g): span trees whose
// aggregated per-span I/O reconciles EXACTLY with the store's IoStats for
// a chaos search and for a full index -> compact -> scrub -> repair ->
// vacuum cycle; registry counters mirroring IoStats increment-for-
// increment through a chaos run; span-tree shape and width-invariant
// registry snapshots byte-identical across fan-out widths; and the
// unified obs::Stats surface with its deprecated cache-field aliases.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"
#include "objectstore/retry.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/span.h"

namespace rottnest::core {
namespace {

using format::ColumnVector;
using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::FaultInjectingStore;
using objectstore::FaultOptions;
using objectstore::InMemoryObjectStore;
using objectstore::IoStats;
using objectstore::RetryingStore;
using objectstore::RetryPolicy;
using objectstore::SimulatedSleeper;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  s.columns.push_back({"body", PhysicalType::kByteArray, 0});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0xabcdef);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

RottnestOptions Options() {
  RottnestOptions options;
  options.index_dir = "idx/t";
  options.fm.block_size = 2048;
  options.fm.sample_rate = 8;
  options.index_timeout_micros = 600LL * 1'000'000;
  return options;
}

format::WriterOptions WriterOpts() {
  format::WriterOptions w;
  w.target_page_bytes = 2048;
  w.target_row_group_bytes = 32 << 10;
  return w;
}

void AppendRows(Table* table, uint64_t first_id, size_t rows) {
  RowBatch b;
  b.schema = MakeSchema();
  format::FlatFixed uuids;
  uuids.elem_size = 16;
  ColumnVector::Strings bodies;
  for (size_t i = 0; i < rows; ++i) {
    uint64_t id = first_id + i;
    std::string u = UuidFor(id);
    uuids.Append(Slice(u));
    bodies.push_back("row " + std::to_string(id) + " token" +
                     std::to_string(id % 7) + " payload");
  }
  b.columns.emplace_back(std::move(uuids));
  b.columns.emplace_back(std::move(bodies));
  ASSERT_TRUE(table->Append(b).ok());
}

/// Plain copy of the physical counters an operation can move.
struct IoSnap {
  uint64_t gets = 0, puts = 0, lists = 0, deletes = 0, heads = 0;
  uint64_t bytes_read = 0, bytes_written = 0;
};

IoSnap Snap(const IoStats& s) {
  IoSnap out;
  out.gets = s.gets.load();
  out.puts = s.puts.load();
  out.lists = s.lists.load();
  out.deletes = s.deletes.load();
  out.heads = s.heads.load();
  out.bytes_read = s.bytes_read.load();
  out.bytes_written = s.bytes_written.load();
  return out;
}

/// Asserts the tracer's whole-tree aggregate equals the physical IoStats
/// delta field-for-field, the tree has exactly one root named `root_name`,
/// and every child's parent id precedes it. Resets the tracer.
void CheckTreeReconciles(obs::Tracer* tracer, const char* root_name,
                         const IoSnap& before, const IoSnap& after) {
  SCOPED_TRACE(root_name);
  obs::SpanIo total = tracer->AggregateIo();
  EXPECT_EQ(total.gets, after.gets - before.gets);
  EXPECT_EQ(total.puts, after.puts - before.puts);
  EXPECT_EQ(total.lists, after.lists - before.lists);
  EXPECT_EQ(total.deletes, after.deletes - before.deletes);
  EXPECT_EQ(total.heads, after.heads - before.heads);
  EXPECT_EQ(total.bytes_read, after.bytes_read - before.bytes_read);
  EXPECT_EQ(total.bytes_written, after.bytes_written - before.bytes_written);
  size_t roots = 0;
  for (const obs::SpanData& s : tracer->Spans()) {
    EXPECT_TRUE(s.ended) << s.name;
    EXPECT_GE(s.end_micros, s.start_micros);
    if (s.parent == obs::kNoSpan) {
      ++roots;
      EXPECT_EQ(s.name, root_name);
    } else {
      EXPECT_LT(s.parent, s.id) << s.name;
    }
  }
  EXPECT_EQ(roots, 1u);
  tracer->Reset();
}

bool HasSpanWithPrefix(const std::vector<obs::SpanData>& spans,
                       const std::string& prefix) {
  for (const obs::SpanData& s : spans) {
    if (s.name.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// A chaos search: 10% transient faults absorbed by the retrying store. The
// span tree must reconcile exactly with the physical counters (cache off),
// and the registry must mirror the store / retry / fault counters
// increment-for-increment across the WHOLE run, faults included.

TEST(ObsIntegrationTest, ChaosSearchReconcilesSpansAndMetrics) {
  SimulatedClock clock;
  InMemoryObjectStore inner(&clock);
  FaultOptions fopts;
  fopts.seed = 20260807;
  fopts.transient_fault_rate = 0.1;
  fopts.ambiguous_put_rate = 0.1;
  FaultInjectingStore faulty(&inner, fopts);
  RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.max_backoff_micros = 8000;
  RetryingStore store(&faulty, policy, SimulatedSleeper(&clock));

  // Attach every metric mirror BEFORE the first operation, so the counters
  // see the same increments IoStats does.
  obs::MetricsRegistry registry;
  inner.AttachMetrics(&registry);
  store.AttachMetrics(&registry);
  faulty.AttachMetrics(&registry);

  auto table =
      Table::Create(&store, "lake/t", MakeSchema(), WriterOpts()).MoveValue();
  Rottnest client(&store, table.get(), Options());
  AppendRows(table.get(), 0, 200);
  AppendRows(table.get(), 200, 200);
  ASSERT_TRUE(client.Index("uuid", IndexType::kTrie).ok());
  ASSERT_TRUE(client.Index("body", IndexType::kFm).ok());

  obs::Tracer tracer;
  obs::ObsContext obs;
  obs.metrics = &registry;
  obs.tracer = &tracer;
  obs.retry_stats = &store.retry_stats();
  obs.fault_stats = &faulty.fault_stats();

  SearchOptions opts;
  opts.obs = &obs;
  uint64_t retries_before = store.retry_stats().retries.load();
  IoSnap before = Snap(store.stats());
  auto r = client.SearchSubstring("body", "token3", 500, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  IoSnap after = Snap(store.stats());
  ASSERT_FALSE(r.value().matches.empty());

  // The chaos layer really fired inside the traced window over the run.
  EXPECT_GT(faulty.fault_stats().transient_injected.load(), 0u);

  // Unified Stats surface: physical deltas and resilience counters.
  const obs::Stats& stats = r.value().stats;
  EXPECT_EQ(stats.gets, after.gets - before.gets);
  EXPECT_EQ(stats.bytes_read, after.bytes_read - before.bytes_read);
  EXPECT_EQ(stats.retries,
            store.retry_stats().retries.load() - retries_before);

  // Span tree: root `search_substring` with plan/index/probe/scan children
  // whose exclusive I/O sums exactly to the physical delta.
  std::vector<obs::SpanData> spans = tracer.Spans();
  EXPECT_TRUE(HasSpanWithPrefix(spans, "plan"));
  EXPECT_TRUE(HasSpanWithPrefix(spans, "index:"));
  CheckTreeReconciles(&tracer, "search_substring", before, after);

  // Metrics-vs-IoStats reconciliation, whole run: the registry mirrors are
  // emitted beside every counter increment, so they must be EXACTLY equal
  // — chaos, retries and duplicate ambiguous writes included.
  const IoStats& io = inner.stats();
  EXPECT_EQ(registry.GetCounter("store.memory.gets")->value(),
            io.gets.load());
  EXPECT_EQ(registry.GetCounter("store.memory.puts")->value(),
            io.puts.load());
  EXPECT_EQ(registry.GetCounter("store.memory.lists")->value(),
            io.lists.load());
  EXPECT_EQ(registry.GetCounter("store.memory.bytes_read")->value(),
            io.bytes_read.load());
  EXPECT_EQ(registry.GetCounter("store.memory.bytes_written")->value(),
            io.bytes_written.load());
  // The per-GET size histogram records successful reads only (the gets
  // counter also counts NotFound probes), so its mass equals bytes_read.
  EXPECT_LE(registry.GetHistogram("store.memory.get_bytes")->Count(),
            io.gets.load());
  EXPECT_EQ(registry.GetHistogram("store.memory.get_bytes")->Sum(),
            io.bytes_read.load());
  EXPECT_EQ(registry.GetCounter("retry.store.retries")->value(),
            store.retry_stats().retries.load());
  EXPECT_EQ(registry.GetCounter("retry.store.attempts")->value(),
            store.retry_stats().attempts.load());
  EXPECT_EQ(registry.GetCounter("fault.store.transient_injected")->value(),
            faulty.fault_stats().transient_injected.load());
  EXPECT_EQ(registry.GetCounter("op.search_substring.count")->value(), 1u);
}

// ---------------------------------------------------------------------------
// The full maintenance cycle: every operation's span tree reconciles with
// its own physical window, including Repair, whose rebuilt Index ops nest
// their root spans under the repair root.

TEST(ObsIntegrationTest, FullCycleSpanTreesReconcileWithIoStats) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto table =
      Table::Create(&store, "lake/t", MakeSchema(), WriterOpts()).MoveValue();
  Rottnest client(&store, table.get(), Options());
  AppendRows(table.get(), 0, 150);

  obs::Tracer tracer;
  obs::ObsContext obs;
  obs.tracer = &tracer;

  // Index (twice, so Compact has two small inputs to merge).
  MaintenanceOptions mopts;
  mopts.obs = &obs;
  IoSnap before = Snap(store.stats());
  ASSERT_TRUE(client.Index("uuid", IndexType::kTrie, mopts).ok());
  {
    std::vector<obs::SpanData> spans = tracer.Spans();
    EXPECT_TRUE(HasSpanWithPrefix(spans, "plan"));
    EXPECT_TRUE(HasSpanWithPrefix(spans, "stage:"));
    EXPECT_TRUE(HasSpanWithPrefix(spans, "commit"));
  }
  CheckTreeReconciles(&tracer, "index", before, Snap(store.stats()));

  AppendRows(table.get(), 150, 150);
  before = Snap(store.stats());
  ASSERT_TRUE(client.Index("uuid", IndexType::kTrie, mopts).ok());
  CheckTreeReconciles(&tracer, "index", before, Snap(store.stats()));

  // Compact.
  before = Snap(store.stats());
  auto compacted = client.Compact("uuid", IndexType::kTrie, mopts);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ(compacted.value().replaced.size(), 2u);
  {
    std::vector<obs::SpanData> spans = tracer.Spans();
    EXPECT_TRUE(HasSpanWithPrefix(spans, "input:"));
    EXPECT_TRUE(HasSpanWithPrefix(spans, "merge"));
  }
  CheckTreeReconciles(&tracer, "compact", before, Snap(store.stats()));

  // Corrupt the compacted index object so Scrub finds real damage and
  // Repair has work to do. Done OUTSIDE any measured window.
  auto entries = client.metadata().ReadAll();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 1u);
  std::string victim = entries.value()[0].index_path;
  {
    Buffer buf;
    ASSERT_TRUE(store.Get(victim, &buf).ok());
    ASSERT_GT(buf.size(), 30u);
    buf[buf.size() / 3] ^= 0xff;
    ASSERT_TRUE(store.Put(victim, Slice(buf)).ok());
  }

  // Scrub (deep).
  ScrubOptions sopts;
  sopts.deep = true;
  sopts.obs = &obs;
  before = Snap(store.stats());
  auto scrubbed = client.Scrub(sopts);
  ASSERT_TRUE(scrubbed.ok()) << scrubbed.status().ToString();
  EXPECT_FALSE(scrubbed.value().clean());
  {
    std::vector<obs::SpanData> spans = tracer.Spans();
    EXPECT_TRUE(HasSpanWithPrefix(spans, "audit:"));
    EXPECT_TRUE(HasSpanWithPrefix(spans, "orphans"));
  }
  CheckTreeReconciles(&tracer, "scrub", before, Snap(store.stats()));

  // Repair: quarantine + rebuild. The rebuilt Index op must hang its root
  // span UNDER the repair root, and the combined tree must still reconcile
  // with repair's whole physical window.
  RepairOptions ropts;
  ropts.obs = &obs;
  before = Snap(store.stats());
  auto repaired = client.Repair(scrubbed.value(), ropts);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(repaired.value().quarantined.size(), 1u);
  EXPECT_EQ(repaired.value().rebuilt.size(), 1u);
  {
    std::vector<obs::SpanData> spans = tracer.Spans();
    obs::SpanId repair_root = obs::kNoSpan;
    for (const obs::SpanData& s : spans) {
      if (s.parent == obs::kNoSpan) repair_root = s.id;
    }
    bool nested_index = false;
    for (const obs::SpanData& s : spans) {
      if (s.name == "index" && s.parent == repair_root) nested_index = true;
    }
    EXPECT_TRUE(nested_index);
    EXPECT_TRUE(HasSpanWithPrefix(spans, "quarantine"));
  }
  CheckTreeReconciles(&tracer, "repair", before, Snap(store.stats()));

  // Vacuum after the timeout, with physical deletes.
  clock.Advance(Options().index_timeout_micros + 60LL * 1'000'000);
  auto latest = table->GetSnapshot();
  ASSERT_TRUE(latest.ok());
  before = Snap(store.stats());
  auto vacuumed = client.Vacuum(latest.value().version, mopts);
  ASSERT_TRUE(vacuumed.ok()) << vacuumed.status().ToString();
  CheckTreeReconciles(&tracer, "vacuum", before, Snap(store.stats()));

  ASSERT_TRUE(client.CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Width invariance: the span-tree shape (names + parent edges, in id
// order) is identical at fan-out widths 1, 2 and 8, and the registry
// snapshot — which only receives width-invariant counters — is
// byte-identical across widths.

TEST(ObsIntegrationTest, SpanShapeAndRegistrySnapshotInvariantAcrossWidths) {
  struct WidthRun {
    std::vector<std::string> shape;  ///< "parent>name" in span-id order.
    std::string registry_dump;
  };
  auto run = [](size_t width) {
    SimulatedClock clock;
    InMemoryObjectStore store(&clock);
    obs::MetricsRegistry registry;
    store.AttachMetrics(&registry);
    auto table = Table::Create(&store, "lake/t", MakeSchema(), WriterOpts())
                     .MoveValue();
    Rottnest client(&store, table.get(), Options());
    obs::Tracer tracer;
    obs::ObsContext obs;
    obs.metrics = &registry;
    obs.tracer = &tracer;

    // Two index generations over the uuid column: the search fans out over
    // two candidate indexes, so width actually matters.
    MaintenanceOptions mopts;
    mopts.obs = &obs;
    AppendRows(table.get(), 0, 120);
    EXPECT_TRUE(client.Index("uuid", IndexType::kTrie, mopts).ok());
    EXPECT_TRUE(client.Index("body", IndexType::kFm, mopts).ok());
    AppendRows(table.get(), 120, 120);
    EXPECT_TRUE(client.Index("uuid", IndexType::kTrie, mopts).ok());

    SearchOptions opts;
    opts.obs = &obs;
    opts.parallelism = width;
    std::string u = UuidFor(7);
    auto r = client.SearchUuid("uuid", Slice(u), 10, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().matches.size(), 1u);
    auto s = client.SearchSubstring("body", "token5", 300, opts);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    EXPECT_EQ(r.value().stats.parallelism, std::min<size_t>(width, 2));

    WidthRun out;
    for (const obs::SpanData& sp : tracer.Spans()) {
      // Object keys embed per-run nonces; compare the structural name (the
      // kind prefix up to and including the ':') plus the parent edge.
      size_t colon = sp.name.find(':');
      std::string kind =
          colon == std::string::npos ? sp.name : sp.name.substr(0, colon + 1);
      out.shape.push_back(std::to_string(sp.parent) + ">" + kind);
    }
    out.registry_dump = registry.SnapshotJson().Dump();
    return out;
  };

  WidthRun serial = run(1);
  WidthRun two = run(2);
  WidthRun eight = run(8);
  ASSERT_FALSE(serial.shape.empty());
  EXPECT_EQ(two.shape, serial.shape);
  EXPECT_EQ(eight.shape, serial.shape);
  EXPECT_EQ(two.registry_dump, serial.registry_dump);
  EXPECT_EQ(eight.registry_dump, serial.registry_dump);
}

// ---------------------------------------------------------------------------
// The unified Stats surface: cache counters live in result.stats (the old
// top-level SearchResult aliases are gone).

TEST(ObsIntegrationTest, UnifiedStatsSurface) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  auto table =
      Table::Create(&store, "lake/t", MakeSchema(), WriterOpts()).MoveValue();
  RottnestOptions options = Options();
  options.cache_bytes = 32ull << 20;
  Rottnest client(&store, table.get(), options);
  AppendRows(table.get(), 0, 150);

  auto report = client.Index("body", IndexType::kFm);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().stats.bytes_read, 0u);

  auto cold = client.SearchSubstring("body", "token2", 300);
  ASSERT_TRUE(cold.ok());
  auto warm = client.SearchSubstring("body", "token2", 300);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm.value().stats.cache_hits, 0u);
  EXPECT_GT(cold.value().stats.cache_misses, 0u);

  ScrubOptions sopts;
  sopts.deep = true;
  auto scrubbed = client.Scrub(sopts);
  ASSERT_TRUE(scrubbed.ok());
  EXPECT_TRUE(scrubbed.value().clean());
  EXPECT_GT(scrubbed.value().stats.gets, 0u);
}

}  // namespace
}  // namespace rottnest::core
