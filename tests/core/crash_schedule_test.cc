// Systematic crash-schedule exploration (paper §IV-D): run each protocol
// operation — index, compact, vacuum — under the fault-injecting store with
// a crash scheduled at the Nth store operation, for EVERY N up to the
// operation's fault-free op count and for both crash modes (the write lost /
// the write landed but unobserved). After each truncated run the protocol
// invariants must hold, and retrying the operation after a "restart" must
// converge to a correct state. This enumerates every prefix of the
// operation's storage footprint instead of sampling a few failure points.
#include <cstring>
#include <functional>
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"

namespace rottnest::core {
namespace {

using format::PhysicalType;
using format::RowBatch;
using format::Schema;
using index::IndexType;
using lake::Table;
using objectstore::CrashMode;
using objectstore::FaultInjectingStore;
using objectstore::InMemoryObjectStore;

Schema MakeSchema() {
  Schema s;
  s.columns.push_back({"uuid", PhysicalType::kFixedLenByteArray, 16});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0x5a5a);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

RottnestOptions Options() {
  RottnestOptions options;
  options.index_dir = "idx/p";
  options.index_timeout_micros = 60LL * 1'000'000;
  return options;
}

/// One isolated universe: a fresh lake + client over a fault-injecting
/// store. Rebuilt per crash schedule so every run starts from the same
/// deterministic state.
/// Latency injection stays ON during crash exploration (served through the
/// simulated clock, so runs are wall-instant): crash recovery must be
/// correct on a slow store, not just a fast one.
objectstore::FaultOptions LatencyOpts() {
  objectstore::FaultOptions fopts;
  fopts.seed = 77;
  fopts.base_latency_micros = 200;
  fopts.slow_read_rate = 0.05;
  fopts.slow_read_latency_micros = 20'000;
  return fopts;
}

struct World {
  SimulatedClock clock;
  InMemoryObjectStore inner{&clock};
  FaultInjectingStore store;
  std::unique_ptr<Table> table;
  std::unique_ptr<Rottnest> client;

  /// Tests that do exact clock arithmetic (vacuum age boundaries) pass a
  /// latency-free FaultOptions{}; everything else keeps the slow store.
  explicit World(objectstore::FaultOptions fopts = LatencyOpts())
      : store(&inner, fopts) {
    store.SetSleeper(objectstore::SimulatedSleeper(&clock));
    table = Table::Create(&store, "lake/p", MakeSchema()).MoveValue();
    client = std::make_unique<Rottnest>(&store, table.get(), Options());
  }

  void Append(uint64_t first_id, size_t rows) {
    RowBatch b;
    b.schema = MakeSchema();
    format::FlatFixed uuids;
    uuids.elem_size = 16;
    for (size_t i = 0; i < rows; ++i) {
      std::string u = UuidFor(first_id + i);
      uuids.Append(Slice(u));
    }
    b.columns.emplace_back(std::move(uuids));
    ASSERT_TRUE(table->Append(b).ok());
  }
};

struct Scenario {
  const char* name;
  std::function<void(World&)> setup;    ///< Fault-free preamble.
  std::function<Status(World&)> victim; ///< The op whose crashes we explore.
  uint64_t probe_id;                    ///< A row that must stay findable.
};

/// Explores every crash schedule of one scenario; returns how many distinct
/// schedules (op index × crash mode) were exercised.
size_t ExploreScenario(const Scenario& sc) {
  // Fault-free run: measure the victim's storage footprint. The op sequence
  // is deterministic given identical setup, so `num_ops` transfers to the
  // crash runs below.
  uint64_t num_ops = 0;
  {
    World w;
    sc.setup(w);
    uint64_t before = w.store.op_count();
    Status s = sc.victim(w);
    EXPECT_TRUE(s.ok()) << sc.name << " fault-free: " << s.ToString();
    if (!s.ok()) return 0;
    num_ops = w.store.op_count() - before;
  }
  EXPECT_GT(num_ops, 0u) << sc.name;

  size_t schedules = 0;
  for (uint64_t n = 0; n < num_ops; ++n) {
    for (CrashMode mode : {CrashMode::kBeforeOp, CrashMode::kAfterOp}) {
      SCOPED_TRACE(std::string(sc.name) + " crash at victim op " +
                   std::to_string(n) +
                   (mode == CrashMode::kBeforeOp ? " (before)" : " (after)"));
      World w;
      sc.setup(w);
      w.store.SetCrashAtOp(w.store.op_count() + n, mode);

      // The truncated run must fail — the process died mid-operation.
      Status s = sc.victim(w);
      EXPECT_FALSE(s.ok());
      EXPECT_TRUE(w.store.crashed());

      // Invariant check after the crash, before any repair: a truncated run
      // must never leave dangling metadata (Existence) or a vacuum that
      // deleted a committed object.
      w.store.ClearCrash();  // "Restart the process."
      Status inv = w.client->CheckInvariants();
      EXPECT_TRUE(inv.ok()) << inv.ToString();

      // The retried operation converges...
      Status retry = sc.victim(w);
      EXPECT_TRUE(retry.ok()) << retry.ToString();
      Status inv2 = w.client->CheckInvariants();
      EXPECT_TRUE(inv2.ok()) << inv2.ToString();

      // ...and search still answers correctly.
      auto result =
          w.client->SearchUuid("uuid", Slice(UuidFor(sc.probe_id)), 3);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (result.ok()) {
        EXPECT_EQ(result.value().matches.size(), 1u);
      }
      ++schedules;
    }
  }
  return schedules;
}

/// Crash exploration for the bare Table commit paths (Append/DeleteWhere),
/// whose convergence contract is weaker than exactly-once: an ambiguous
/// commit crash can leave the FIRST attempt durably committed, so the
/// retried Append may land its batch twice — legal Delta-style semantics
/// (the retry is a NEW commit, not a replay of the old one). What must
/// hold after restart + retry: protocol invariants, reopen convergence (a
/// fresh Open of the same store reads the same snapshot bytes), and the
/// scenario's own probe predicate (`check`).
size_t ExploreTableScenario(const Scenario& sc,
                            const std::function<void(World&)>& check) {
  uint64_t num_ops = 0;
  {
    World w;
    sc.setup(w);
    uint64_t before = w.store.op_count();
    Status s = sc.victim(w);
    EXPECT_TRUE(s.ok()) << sc.name << " fault-free: " << s.ToString();
    if (!s.ok()) return 0;
    num_ops = w.store.op_count() - before;
  }
  EXPECT_GT(num_ops, 0u) << sc.name;

  size_t schedules = 0;
  for (uint64_t n = 0; n < num_ops; ++n) {
    for (CrashMode mode : {CrashMode::kBeforeOp, CrashMode::kAfterOp}) {
      SCOPED_TRACE(std::string(sc.name) + " crash at victim op " +
                   std::to_string(n) +
                   (mode == CrashMode::kBeforeOp ? " (before)" : " (after)"));
      World w;
      sc.setup(w);
      w.store.SetCrashAtOp(w.store.op_count() + n, mode);

      Status s = sc.victim(w);
      EXPECT_FALSE(s.ok());
      EXPECT_TRUE(w.store.crashed());

      w.store.ClearCrash();  // "Restart the process."
      Status inv = w.client->CheckInvariants();
      EXPECT_TRUE(inv.ok()) << inv.ToString();

      Status retry = sc.victim(w);
      EXPECT_TRUE(retry.ok()) << retry.ToString();

      // Reopen convergence: a fresh reader of the same store must see the
      // exact snapshot the surviving writer sees — the crash left no state
      // only the in-memory instance could interpret.
      auto reopened = Table::Open(&w.store, "lake/p");
      EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
      if (reopened.ok()) {
        auto ours = w.table->GetSnapshot();
        auto theirs = reopened.value()->GetSnapshot();
        EXPECT_TRUE(ours.ok()) << ours.status().ToString();
        EXPECT_TRUE(theirs.ok()) << theirs.status().ToString();
        if (ours.ok() && theirs.ok()) {
          EXPECT_EQ(ours.value().DebugString(),
                    theirs.value().DebugString());
        }
      }
      check(w);
      ++schedules;
    }
  }
  return schedules;
}

TEST(CrashScheduleTest, AppendSurvivesEveryCrashPoint) {
  Scenario sc;
  sc.name = "append";
  sc.setup = [](World& w) {
    w.Append(0, 40);
    ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
    // A checkpoint in the preamble makes every crash-run recovery exercise
    // the checkpoint+suffix replay path, not just replay-from-0.
    ASSERT_TRUE(w.table->Checkpoint().ok());
  };
  sc.victim = [](World& w) {
    RowBatch b;
    b.schema = MakeSchema();
    format::FlatFixed uuids;
    uuids.elem_size = 16;
    for (size_t i = 0; i < 10; ++i) {
      std::string u = UuidFor(100 + i);
      uuids.Append(Slice(u));
    }
    b.columns.emplace_back(std::move(uuids));
    return w.table->Append(b).status();
  };
  size_t schedules = ExploreTableScenario(sc, [](World& w) {
    // At-least-once: the probe row is findable after the retry (twice if
    // the crashed attempt's commit actually landed — still a match).
    auto result = w.client->SearchUuid("uuid", Slice(UuidFor(105)), 8);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GE(result.value().matches.size(), 1u);
  });
  EXPECT_GE(schedules, 2u);
  RecordProperty("schedules", static_cast<int>(schedules));
}

TEST(CrashScheduleTest, DeleteWhereSurvivesEveryCrashPoint) {
  Scenario sc;
  sc.name = "delete-where";
  sc.setup = [](World& w) {
    w.Append(0, 40);
    ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
  };
  sc.victim = [](World& w) {
    const std::string target = UuidFor(7);
    return w.table
        ->DeleteWhere("uuid",
                      [&](const format::ColumnVector& c, size_t r) {
                        Slice v = c.fixed().at(r);
                        return v.size() == target.size() &&
                               std::memcmp(v.data(), target.data(),
                                           v.size()) == 0;
                      })
        .status();
  };
  size_t schedules = ExploreTableScenario(sc, [](World& w) {
    // Deletion is idempotent: after the retried DeleteWhere the row is
    // gone no matter which crash prefix the first attempt died at.
    auto result = w.client->SearchUuid("uuid", Slice(UuidFor(7)), 3);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().matches.size(), 0u);
    // A neighbouring row survives.
    auto alive = w.client->SearchUuid("uuid", Slice(UuidFor(8)), 3);
    ASSERT_TRUE(alive.ok()) << alive.status().ToString();
    EXPECT_EQ(alive.value().matches.size(), 1u);
  });
  EXPECT_GE(schedules, 2u);
  RecordProperty("schedules", static_cast<int>(schedules));
}

TEST(CrashScheduleTest, IndexSurvivesEveryCrashPoint) {
  Scenario sc;
  sc.name = "index";
  sc.setup = [](World& w) { w.Append(0, 40); };
  sc.victim = [](World& w) {
    return w.client->Index("uuid", IndexType::kTrie).status();
  };
  sc.probe_id = 7;
  size_t schedules = ExploreScenario(sc);
  EXPECT_GE(schedules, 2u);
  RecordProperty("schedules", static_cast<int>(schedules));
}

TEST(CrashScheduleTest, IncrementalIndexSurvivesEveryCrashPoint) {
  Scenario sc;
  sc.name = "index-incremental";
  sc.setup = [](World& w) {
    w.Append(0, 40);
    ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
    w.Append(40, 40);
  };
  sc.victim = [](World& w) {
    return w.client->Index("uuid", IndexType::kTrie).status();
  };
  sc.probe_id = 55;  // In the second, crash-afflicted batch.
  size_t schedules = ExploreScenario(sc);
  EXPECT_GE(schedules, 2u);
  RecordProperty("schedules", static_cast<int>(schedules));
}

TEST(CrashScheduleTest, CompactSurvivesEveryCrashPoint) {
  Scenario sc;
  sc.name = "compact";
  sc.setup = [](World& w) {
    for (int i = 0; i < 3; ++i) {
      w.Append(static_cast<uint64_t>(i) * 40, 40);
      ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
    }
  };
  sc.victim = [](World& w) {
    return w.client->Compact("uuid", IndexType::kTrie).status();
  };
  sc.probe_id = 90;
  size_t schedules = ExploreScenario(sc);
  EXPECT_GE(schedules, 2u);
  RecordProperty("schedules", static_cast<int>(schedules));
}

TEST(CrashScheduleTest, VacuumSurvivesEveryCrashPoint) {
  Scenario sc;
  sc.name = "vacuum";
  sc.setup = [](World& w) {
    for (int i = 0; i < 3; ++i) {
      w.Append(static_cast<uint64_t>(i) * 40, 40);
      ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
    }
    ASSERT_TRUE(w.client->Compact("uuid", IndexType::kTrie).ok());
    // Age everything past the timeout so vacuum may physically delete the
    // replaced index files.
    w.clock.Advance(Options().index_timeout_micros + 1'000'000);
  };
  sc.victim = [](World& w) {
    auto latest = w.table->GetSnapshot();
    if (!latest.ok()) return latest.status();
    return w.client->Vacuum(latest.value().version).status();
  };
  sc.probe_id = 90;
  size_t schedules = ExploreScenario(sc);
  EXPECT_GE(schedules, 2u);
  RecordProperty("schedules", static_cast<int>(schedules));
}

TEST(VacuumBoundaryTest, ObjectExactlyAtTimeoutAgeIsDeletable) {
  // The timeout rule's boundary: an index op aborts once elapsed >= timeout,
  // so an uncommitted object whose age is EXACTLY the timeout can no longer
  // be committed — vacuum may delete it. One microsecond younger, it must
  // survive. Latency injection is off: the 2us age gap below is exact, and
  // per-op injected delay would advance the clock during vacuum itself.
  World w{objectstore::FaultOptions{}};
  w.Append(0, 40);
  ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());

  Buffer junk(32, 0x5a);
  ASSERT_TRUE(w.store.Put("idx/p/000000000000aaaa.index", Slice(junk)).ok());
  w.clock.Advance(2);
  ASSERT_TRUE(w.store.Put("idx/p/000000000000bbbb.index", Slice(junk)).ok());

  // Now the first orphan is exactly timeout old, the second 2us younger.
  w.clock.Advance(Options().index_timeout_micros - 2);
  auto vac = w.client->Vacuum(0);
  ASSERT_TRUE(vac.ok()) << vac.status().ToString();
  EXPECT_EQ(vac.value().objects_deleted, 1u);
  objectstore::ObjectMeta meta;
  EXPECT_TRUE(w.store.Head("idx/p/000000000000aaaa.index", &meta).IsNotFound());
  EXPECT_TRUE(w.store.Head("idx/p/000000000000bbbb.index", &meta).ok());
  EXPECT_TRUE(w.client->CheckInvariants().ok());
}

TEST(VacuumBoundaryTest, CommitLandingDuringVacuumWindowSurvives) {
  // The race §IV-D's timeout guard exists for: vacuum reads the metadata
  // table, and BEFORE it lists/deletes, a concurrent indexer uploads AND
  // commits a fresh index. The new object is absent from vacuum's stale
  // "referenced" set — only the age rule protects it.
  World w;
  w.Append(0, 40);
  ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
  w.Append(40, 40);  // Unindexed as of yet.
  // Age the committed state so vacuum would delete any unreferenced object
  // from this era, then race a fresh commit into vacuum's window.
  w.clock.Advance(Options().index_timeout_micros + 1'000'000);

  Rottnest concurrent(&w.store, w.table.get(), Options());
  bool fired = false;
  w.store.SetFailurePoint(
      [&](const std::string& op, const std::string& key) -> Status {
        // Vacuum's physical-delete phase starts with a LIST of the index
        // dir; slot the concurrent index in right before it executes.
        if (op == "list" && key == "idx/p/" && !fired) {
          fired = true;
          auto report = concurrent.Index("uuid", IndexType::kTrie);
          EXPECT_TRUE(report.ok()) << report.status().ToString();
          EXPECT_FALSE(report.value().index_path.empty());
        }
        return Status::OK();
      });
  auto vac = w.client->Vacuum(0);
  w.store.SetFailurePoint(nullptr);
  ASSERT_TRUE(vac.ok()) << vac.status().ToString();
  EXPECT_TRUE(fired);
  EXPECT_EQ(vac.value().objects_deleted, 0u);  // The young commit survived.

  // Existence invariant intact, and the racing index answers queries.
  ASSERT_TRUE(w.client->CheckInvariants().ok());
  auto result = w.client->SearchUuid("uuid", Slice(UuidFor(55)), 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().files_scanned, 0u);  // Served by the new index.
}

TEST(CrashScheduleTest, ExplorerCoversAtLeastFiftySchedules) {
  // The acceptance bar: across the three protocol ops the explorer must
  // enumerate a substantial schedule space, not a handful of hand-picked
  // failure points. Re-measures the fault-free footprints (cheap) rather
  // than rerunning the full exploration.
  auto footprint = [](const std::function<void(World&)>& setup,
                      const std::function<Status(World&)>& victim) {
    World w;
    setup(w);
    uint64_t before = w.store.op_count();
    Status s = victim(w);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return w.store.op_count() - before;
  };
  uint64_t total = 0;
  total += footprint([](World& w) { w.Append(0, 40); },
                     [](World& w) {
                       return w.client->Index("uuid", IndexType::kTrie)
                           .status();
                     });
  total += footprint(
      [](World& w) {
        for (int i = 0; i < 3; ++i) {
          w.Append(static_cast<uint64_t>(i) * 40, 40);
          ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
        }
      },
      [](World& w) {
        return w.client->Compact("uuid", IndexType::kTrie)
            .status();
      });
  total += footprint(
      [](World& w) {
        for (int i = 0; i < 3; ++i) {
          w.Append(static_cast<uint64_t>(i) * 40, 40);
          ASSERT_TRUE(w.client->Index("uuid", IndexType::kTrie).ok());
        }
        ASSERT_TRUE(
            w.client->Compact("uuid", IndexType::kTrie).ok());
        w.clock.Advance(Options().index_timeout_micros + 1'000'000);
      },
      [](World& w) {
        auto latest = w.table->GetSnapshot();
        if (!latest.ok()) return latest.status();
        return w.client->Vacuum(latest.value().version).status();
      });
  // Each victim op index is explored in both crash modes.
  EXPECT_GE(2 * total, 50u);
}

}  // namespace
}  // namespace rottnest::core
