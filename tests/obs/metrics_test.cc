// MetricsRegistry unit tests: instrument semantics, deterministic
// histogram quantiles, handle stability, byte-stable snapshots, and
// exactness under concurrent emitters (this binary runs in the TSAN CI
// job under the `obs` label).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rottnest::obs {
namespace {

TEST(CounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAddSigned) {
  Gauge g;
  g.Set(100);
  g.Add(-30);
  EXPECT_EQ(g.value(), 70);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, CountSumAndZeroBucket) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  h.Record(0);
  h.Record(0);
  h.Record(1000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 1000u);
  // Two thirds of the mass sits in the zero bucket.
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, QuantileIsBucketLowerBound) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  // The bucket lower bound never exceeds the true quantile, and the
  // log-linear layout keeps it within one sub-bucket (12.5% per octave).
  uint64_t p50 = h.Quantile(0.5);
  EXPECT_LE(p50, 500u);
  EXPECT_GE(p50, 400u);
  uint64_t p99 = h.Quantile(0.99);
  EXPECT_LE(p99, 990u);
  EXPECT_GE(p99, 850u);
  EXPECT_LE(h.Quantile(0.0), h.Quantile(1.0));
}

TEST(HistogramTest, QuantileDeterministicAcrossArrivalOrder) {
  Histogram fwd, rev;
  for (uint64_t v = 0; v < 500; ++v) fwd.Record(v * 7);
  for (uint64_t v = 500; v-- > 0;) rev.Record(v * 7);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(fwd.Quantile(q), rev.Quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(fwd.ToJson().Dump(), rev.ToJson().Dump());
}

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("op.search.count");
  Counter* b = reg.GetCounter("op.search.count");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
  // Same name, different kinds: independent instruments.
  EXPECT_NE(static_cast<void*>(reg.GetGauge("op.search.count")),
            static_cast<void*>(a));
  Histogram* h = reg.GetHistogram("store.get_bytes");
  EXPECT_EQ(h, reg.GetHistogram("store.get_bytes"));
}

TEST(MetricsRegistryTest, SnapshotIsByteStableAcrossInsertionOrder) {
  MetricsRegistry a, b;
  a.GetCounter("z.last")->Add(3);
  a.GetCounter("a.first")->Add(7);
  a.GetGauge("mid")->Set(-2);
  a.GetHistogram("h")->Record(128);
  b.GetHistogram("h")->Record(128);
  b.GetGauge("mid")->Set(-2);
  b.GetCounter("a.first")->Add(7);
  b.GetCounter("z.last")->Add(3);
  EXPECT_EQ(a.SnapshotJson().Dump(), b.SnapshotJson().Dump());
}

TEST(MetricsRegistryTest, DumpTextListsEveryInstrument) {
  MetricsRegistry reg;
  reg.GetCounter("store.memory.gets")->Add(5);
  reg.GetGauge("cache.resident_bytes")->Set(1024);
  reg.GetHistogram("store.memory.get_bytes")->Record(64);
  std::string text = reg.DumpText();
  EXPECT_NE(text.find("store.memory.gets"), std::string::npos);
  EXPECT_NE(text.find("cache.resident_bytes"), std::string::npos);
  EXPECT_NE(text.find("store.memory.get_bytes"), std::string::npos);
}

TEST(MetricsRegistryTest, NullSafeEmissionHelpers) {
  Add(static_cast<Counter*>(nullptr), 3);
  Increment(static_cast<Counter*>(nullptr));
  Record(static_cast<Histogram*>(nullptr), 9);
  Counter c;
  Add(&c, 2);
  Increment(&c);
  EXPECT_EQ(c.value(), 3u);
}

TEST(MetricsRegistryTest, ExactUnderConcurrentEmitters) {
  // Many threads resolving AND emitting through the same names: the
  // registry must stay exact (and TSAN-clean — this test runs in the
  // sanitizer CI job). Half the names collide across threads to exercise
  // shard-lock contention on resolution.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.GetCounter("shared.count")->Increment();
        reg.GetCounter("per_thread." + std::to_string(t))->Add(2);
        reg.GetHistogram("shared.hist")->Record(
            static_cast<uint64_t>(i % 257));
        reg.GetGauge("shared.gauge")->Add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.GetCounter("shared.count")->value(),
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.GetCounter("per_thread." + std::to_string(t))->value(),
              2u * kIters);
  }
  EXPECT_EQ(reg.GetHistogram("shared.hist")->Count(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.GetGauge("shared.gauge")->value(), kThreads * kIters);
}

}  // namespace
}  // namespace rottnest::obs
