// Tracer / ScopedSpan unit tests: parent/child invariants, exclusive-IO
// aggregation, deterministic snapshots under SimulatedClock, null-safety,
// and span creation across concurrent tasks (runs in the TSAN CI job).
#include "obs/span.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.h"

namespace rottnest::obs {
namespace {

TEST(SpanIoTest, AddAndMinusSaturating) {
  SpanIo a;
  a.gets = 10;
  a.bytes_read = 100;
  a.compute_micros = 5;
  SpanIo b;
  b.gets = 3;
  b.bytes_read = 250;  // More than a: saturates to zero, never wraps.
  b.retries = 1;
  SpanIo diff = a.MinusSaturating(b);
  EXPECT_EQ(diff.gets, 7u);
  EXPECT_EQ(diff.bytes_read, 0u);
  EXPECT_EQ(diff.retries, 0u);
  a.Add(b);
  EXPECT_EQ(a.gets, 13u);
  EXPECT_EQ(a.bytes_read, 350u);
  EXPECT_EQ(a.requests(), 13u);
  EXPECT_TRUE(SpanIo{}.IsZero());
  EXPECT_FALSE(a.IsZero());
}

TEST(TracerTest, ParentIdAlwaysSmallerThanChild) {
  Tracer tracer;
  SpanId root = tracer.StartSpan("op", kNoSpan, 0);
  SpanId a = tracer.StartSpan("plan", root, 1);
  SpanId b = tracer.StartSpan("scan", root, 2);
  SpanId leaf = tracer.StartSpan("page", b, 3);
  EXPECT_LT(root, a);
  EXPECT_LT(a, b);
  EXPECT_LT(b, leaf);
  for (const SpanData& s : tracer.Spans()) {
    if (s.parent != kNoSpan) EXPECT_LT(s.parent, s.id);
  }
  EXPECT_EQ(tracer.span_count(), 4u);
}

TEST(TracerTest, AggregateSumsExclusiveIo) {
  Tracer tracer;
  SpanId root = tracer.StartSpan("op", kNoSpan, 0);
  SpanId child = tracer.StartSpan("fetch", root, 1);
  SpanIo root_io;
  root_io.lists = 1;
  SpanIo child_io;
  child_io.gets = 4;
  child_io.bytes_read = 4096;
  tracer.AddIo(root, root_io);
  tracer.AddIo(child, child_io);
  tracer.EndSpan(child, 5);
  tracer.EndSpan(root, 6);
  SpanIo total = tracer.AggregateIo();
  EXPECT_EQ(total.gets, 4u);
  EXPECT_EQ(total.lists, 1u);
  EXPECT_EQ(total.bytes_read, 4096u);
}

TEST(TracerTest, EndNeverPrecedesStartAndUnfinishedSpansSnapshot) {
  Tracer tracer;
  SpanId s = tracer.StartSpan("op", kNoSpan, 100);
  std::vector<SpanData> open = tracer.Spans();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_FALSE(open[0].ended);
  EXPECT_EQ(open[0].end_micros, open[0].start_micros);
  tracer.EndSpan(s, 50);  // Clock anomaly: clamped, never negative.
  std::vector<SpanData> done = tracer.Spans();
  EXPECT_TRUE(done[0].ended);
  EXPECT_GE(done[0].end_micros, done[0].start_micros);
}

TEST(TracerTest, SnapshotAndDumpTreeAreDeterministic) {
  auto build = [](Tracer* t) {
    SpanId root = t->StartSpan("search", kNoSpan, 10);
    SpanId plan = t->StartSpan("plan", root, 11);
    t->EndSpan(plan, 12);
    SpanId idx = t->StartSpan("index:idx/t/0001.index", root, 12);
    SpanIo io;
    io.gets = 2;
    t->AddIo(idx, io);
    t->EndSpan(idx, 15);
    t->EndSpan(root, 16);
  };
  Tracer a, b;
  build(&a);
  build(&b);
  EXPECT_EQ(a.SnapshotJson().Dump(), b.SnapshotJson().Dump());
  std::string tree = a.DumpTree();
  EXPECT_NE(tree.find("search"), std::string::npos);
  EXPECT_NE(tree.find("index:idx/t/0001.index"), std::string::npos);
  a.Reset();
  EXPECT_EQ(a.span_count(), 0u);
  EXPECT_TRUE(a.AggregateIo().IsZero());
}

TEST(ScopedSpanTest, NullTracerIsFullyInert) {
  SimulatedClock clock;
  ScopedSpan span(nullptr, &clock, "noop", kNoSpan);
  EXPECT_EQ(span.id(), kNoSpan);
  SpanIo io;
  io.gets = 1;
  span.AddIo(io);  // Must not crash.
  span.End();
}

TEST(ScopedSpanTest, RaiiEndsSpanOnceAndMoveTransfersOwnership) {
  SimulatedClock clock;
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, &clock, "op", kNoSpan);
    clock.Advance(10);
    ScopedSpan moved = std::move(outer);
    outer.End();  // Moved-from: a no-op.
    EXPECT_EQ(moved.id(), 0);
  }  // `moved` ends the span here.
  std::vector<SpanData> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].ended);
  EXPECT_EQ(spans[0].end_micros - spans[0].start_micros, 10);
}

TEST(TracerTest, FanOutChildrenAttachUnderCapturedParent) {
  // The instrumentation pattern: the parent id is captured by value before
  // the fan-out and every task annotates its pre-created span from its own
  // thread. Spans stay well-formed and the aggregate stays exact.
  Tracer tracer;
  SpanId root = tracer.StartSpan("op", kNoSpan, 0);
  constexpr int kTasks = 16;
  std::vector<SpanId> ids;
  ids.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    ids.push_back(tracer.StartSpan("task:" + std::to_string(i), root, 1));
  }
  std::vector<std::thread> threads;
  threads.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    threads.emplace_back([&tracer, &ids, i] {
      SpanIo io;
      io.gets = static_cast<uint64_t>(i) + 1;
      tracer.AddIo(ids[i], io);
      tracer.EndSpan(ids[i], 2 + i);
    });
  }
  for (auto& t : threads) t.join();
  tracer.EndSpan(root, 100);
  uint64_t expected = 0;
  for (int i = 0; i < kTasks; ++i) expected += static_cast<uint64_t>(i) + 1;
  EXPECT_EQ(tracer.AggregateIo().gets, expected);
  for (const SpanData& s : tracer.Spans()) {
    if (s.id == root) continue;
    EXPECT_EQ(s.parent, root);
    EXPECT_TRUE(s.ended);
  }
}

}  // namespace
}  // namespace rottnest::obs
