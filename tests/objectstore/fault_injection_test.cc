#include "objectstore/fault_injection.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "objectstore/local_disk_store.h"

namespace rottnest::objectstore {
namespace {

Buffer Bytes(const std::string& s) { return Buffer(s.begin(), s.end()); }

class FaultInjectionTest : public ::testing::Test {
 protected:
  SimulatedClock clock_;
  InMemoryObjectStore inner_{&clock_};
  /// Per-run slow-read patterns (a member so ASSERT-bearing helper lambdas
  /// can stay void-returning).
  std::vector<std::vector<bool>> slow_patterns_;
};

TEST_F(FaultInjectionTest, NoFaultsIsTransparent) {
  FaultInjectingStore store(&inner_);
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  Buffer out;
  ASSERT_TRUE(store.Get("k", &out).ok());
  EXPECT_EQ(out, Bytes("v"));
  ObjectMeta meta;
  ASSERT_TRUE(store.Head("k", &meta).ok());
  EXPECT_EQ(meta.size, 1u);
  std::vector<ObjectMeta> listing;
  ASSERT_TRUE(store.List("", &listing).ok());
  EXPECT_EQ(listing.size(), 1u);
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_EQ(store.op_count(), 5u);
  EXPECT_EQ(store.fault_stats().ops.load(), 5u);
  EXPECT_EQ(store.fault_stats().transient_injected.load(), 0u);
}

TEST_F(FaultInjectionTest, TransientFaultsAreDeterministicPerSeed) {
  // The same seed over the same op sequence must inject at the same ops.
  auto run = [&](uint64_t seed) {
    InMemoryObjectStore inner(&clock_);
    FaultOptions opts;
    opts.seed = seed;
    opts.transient_fault_rate = 0.3;
    FaultInjectingStore store(&inner, opts);
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      Status s = store.Put("k" + std::to_string(i), Slice(Bytes("v")));
      EXPECT_TRUE(s.ok() || s.IsUnavailable());
      outcomes.push_back(s.ok());
    }
    return outcomes;
  };
  auto a = run(7);
  auto b = run(7);
  auto c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-200 chance of colliding.
  // A 30% rate over 200 ops injects a plausible number of faults.
  size_t failures = 0;
  for (bool ok : a) failures += ok ? 0 : 1;
  EXPECT_GT(failures, 20u);
  EXPECT_LT(failures, 120u);
}

TEST_F(FaultInjectionTest, TransientFaultHasNoSideEffect) {
  FaultOptions opts;
  opts.seed = 1;
  opts.transient_fault_rate = 1.0;  // Every op fails.
  FaultInjectingStore store(&inner_, opts);
  EXPECT_TRUE(store.Put("k", Slice(Bytes("v"))).IsUnavailable());
  Buffer out;
  EXPECT_TRUE(inner_.Get("k", &out).IsNotFound());  // Write never executed.
  EXPECT_EQ(store.fault_stats().transient_injected.load(), 1u);
}

TEST_F(FaultInjectionTest, AmbiguousPutLandsButReportsError) {
  FaultOptions opts;
  opts.seed = 1;
  opts.ambiguous_put_rate = 1.0;
  FaultInjectingStore store(&inner_, opts);
  EXPECT_TRUE(store.Put("k", Slice(Bytes("v"))).IsUnavailable());
  Buffer out;
  ASSERT_TRUE(inner_.Get("k", &out).ok());  // ...but the write landed.
  EXPECT_EQ(out, Bytes("v"));
  // Reads are never ambiguous.
  ASSERT_TRUE(store.Get("k", &out).ok());
  EXPECT_EQ(store.fault_stats().ambiguous_injected.load(), 1u);
}

TEST_F(FaultInjectionTest, AmbiguousPutIfAbsentKeepsGenuineConflict) {
  // Ambiguity masks success, never a real AlreadyExists: the caller must
  // still learn it lost a commit race.
  ASSERT_TRUE(inner_.Put("log/0", Slice(Bytes("winner"))).ok());
  FaultOptions opts;
  opts.seed = 1;
  opts.ambiguous_put_rate = 1.0;
  FaultInjectingStore store(&inner_, opts);
  EXPECT_TRUE(store.PutIfAbsent("log/0", Slice(Bytes("loser")))
                  .IsAlreadyExists());
  Buffer out;
  ASSERT_TRUE(inner_.Get("log/0", &out).ok());
  EXPECT_EQ(out, Bytes("winner"));
}

TEST_F(FaultInjectionTest, CrashBeforeOpLosesTheWrite) {
  FaultInjectingStore store(&inner_);
  ASSERT_TRUE(store.Put("a", Slice(Bytes("v"))).ok());  // op 0
  store.SetCrashAtOp(1, CrashMode::kBeforeOp);
  EXPECT_TRUE(store.Put("b", Slice(Bytes("v"))).IsIOError());  // op 1: dies.
  EXPECT_TRUE(store.crashed());
  Buffer out;
  EXPECT_TRUE(inner_.Get("b", &out).IsNotFound());
  // A dead process cannot issue more requests.
  EXPECT_TRUE(store.Get("a", &out).IsIOError());
  EXPECT_GE(store.fault_stats().crash_refusals.load(), 1u);
  // Restart revives it.
  store.ClearCrash();
  EXPECT_FALSE(store.crashed());
  ASSERT_TRUE(store.Get("a", &out).ok());
}

TEST_F(FaultInjectionTest, CrashAfterOpKeepsTheWrite) {
  FaultInjectingStore store(&inner_);
  store.SetCrashAtOp(0, CrashMode::kAfterOp);
  EXPECT_TRUE(store.Put("k", Slice(Bytes("v"))).IsIOError());
  Buffer out;
  ASSERT_TRUE(inner_.Get("k", &out).ok());  // The write survived the crash.
  EXPECT_EQ(out, Bytes("v"));
}

TEST_F(FaultInjectionTest, ScheduledFaultFiresAtExactOp) {
  FaultInjectingStore store(&inner_);
  store.ScheduleFault(1, Status::Unavailable("scripted"),
                      /*side_effect_lands=*/false);
  ASSERT_TRUE(store.Put("a", Slice(Bytes("v"))).ok());            // op 0
  EXPECT_TRUE(store.Put("b", Slice(Bytes("v"))).IsUnavailable()); // op 1
  ASSERT_TRUE(store.Put("c", Slice(Bytes("v"))).ok());            // op 2
  Buffer out;
  EXPECT_TRUE(inner_.Get("b", &out).IsNotFound());
  EXPECT_EQ(store.fault_stats().scheduled_injected.load(), 1u);

  // A scheduled ambiguous fault: the op lands but errors.
  store.ScheduleFault(store.op_count(), Status::Unavailable("ambiguous"),
                      /*side_effect_lands=*/true);
  EXPECT_TRUE(store.Put("d", Slice(Bytes("v"))).IsUnavailable());
  ASSERT_TRUE(inner_.Get("d", &out).ok());
}

TEST_F(FaultInjectionTest, FailurePointHookSubsumesInMemoryHook) {
  // The old InMemoryObjectStore::SetFailurePoint contract, now layered over
  // any store.
  FaultInjectingStore store(&inner_);
  store.SetFailurePoint([](const std::string& op, const std::string& key) {
    if (op == "put" && key == "poison") return Status::IOError("injected");
    return Status::OK();
  });
  EXPECT_TRUE(store.Put("poison", Slice(Bytes("v"))).IsIOError());
  EXPECT_TRUE(store.Put("fine", Slice(Bytes("v"))).ok());
  Buffer out;
  EXPECT_TRUE(inner_.Get("poison", &out).IsNotFound());  // No side effect.
  store.SetFailurePoint(nullptr);
  EXPECT_TRUE(store.Put("poison", Slice(Bytes("v"))).ok());
}

TEST_F(FaultInjectionTest, HookMayReenterTheStore) {
  // Hooks run without internal locks held, so a hook can issue store ops —
  // the mechanism protocol tests use to interleave a concurrent writer at
  // an exact point (e.g. a commit racing vacuum between list and delete).
  FaultInjectingStore store(&inner_);
  bool fired = false;
  store.SetFailurePoint(
      [&](const std::string& op, const std::string& key) -> Status {
        if (op == "delete" && !fired) {
          fired = true;
          return store.Put("concurrent", Slice(Bytes("w")));
        }
        return Status::OK();
      });
  ASSERT_TRUE(store.Put("victim", Slice(Bytes("v"))).ok());
  ASSERT_TRUE(store.Delete("victim").ok());
  EXPECT_TRUE(fired);
  Buffer out;
  ASSERT_TRUE(inner_.Get("concurrent", &out).ok());
}

TEST_F(FaultInjectionTest, CorruptReadFlipsOneBitButReportsSuccess) {
  ASSERT_TRUE(inner_.Put("k", Slice(Bytes("hello world payload"))).ok());
  FaultOptions opts;
  opts.seed = 11;
  opts.corrupt_read_rate = 1.0;
  FaultInjectingStore store(&inner_, opts);
  Buffer out;
  ASSERT_TRUE(store.Get("k", &out).ok());  // SUCCESS — that is the point.
  Buffer truth = Bytes("hello world payload");
  EXPECT_NE(out, truth);
  // Exactly one bit differs.
  ASSERT_EQ(out.size(), truth.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    flipped_bits += __builtin_popcount(out[i] ^ truth[i]);
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(store.fault_stats().corrupt_reads_injected.load(), 1u);
  // The stored object itself is untouched.
  ASSERT_TRUE(inner_.Get("k", &out).ok());
  EXPECT_EQ(out, truth);
}

TEST_F(FaultInjectionTest, CorruptReadsAreDeterministicPerSeed) {
  ASSERT_TRUE(inner_.Put("k", Slice(Bytes("the same damaged bytes"))).ok());
  auto read_once = [&](uint64_t seed) {
    FaultOptions opts;
    opts.seed = seed;
    opts.corrupt_read_rate = 1.0;
    FaultInjectingStore store(&inner_, opts);
    Buffer out;
    EXPECT_TRUE(store.Get("k", &out).ok());
    return out;
  };
  EXPECT_EQ(read_once(5), read_once(5));
  EXPECT_NE(read_once(5), read_once(6));
}

TEST_F(FaultInjectionTest, CorruptKeyFilterSparesOtherKeys) {
  ASSERT_TRUE(inner_.Put("idx/a.index", Slice(Bytes("index bytes"))).ok());
  ASSERT_TRUE(inner_.Put("meta/log", Slice(Bytes("txn log bytes"))).ok());
  FaultInjectingStore store(&inner_);
  store.SetCorruptReadRate(1.0, ".index");
  Buffer out;
  ASSERT_TRUE(store.Get("meta/log", &out).ok());
  EXPECT_EQ(out, Bytes("txn log bytes"));  // Filtered out: pristine.
  ASSERT_TRUE(store.Get("idx/a.index", &out).ok());
  EXPECT_NE(out, Bytes("index bytes"));  // Matching key: damaged.
  store.SetCorruptReadRate(0);
  ASSERT_TRUE(store.Get("idx/a.index", &out).ok());
  EXPECT_EQ(out, Bytes("index bytes"));  // Knob off: pristine again.
}

TEST_F(FaultInjectionTest, ScheduledTruncationShortensOneRead) {
  ASSERT_TRUE(inner_.Put("k", Slice(Bytes("0123456789"))).ok());
  FaultInjectingStore store(&inner_);
  store.ScheduleTruncation(store.op_count(), 4);
  Buffer out;
  ASSERT_TRUE(store.Get("k", &out).ok());
  EXPECT_EQ(out, Bytes("0123"));
  ASSERT_TRUE(store.Get("k", &out).ok());  // Only the scheduled op.
  EXPECT_EQ(out, Bytes("0123456789"));
  EXPECT_EQ(store.fault_stats().truncations_injected.load(), 1u);
}

TEST_F(FaultInjectionTest, RotObjectDamagesTheBackingStore) {
  Buffer truth = Bytes("some committed index object bytes");
  ASSERT_TRUE(inner_.Put("a", Slice(truth)).ok());
  ASSERT_TRUE(inner_.Put("b", Slice(truth)).ok());
  ASSERT_TRUE(inner_.Put("c", Slice(truth)).ok());
  FaultInjectingStore store(&inner_);
  uint64_t ops_before = store.op_count();

  ASSERT_TRUE(store.RotObject("a", RotKind::kFlipBit).ok());
  Buffer out;
  ASSERT_TRUE(inner_.Get("a", &out).ok());
  EXPECT_NE(out, truth);
  EXPECT_EQ(out.size(), truth.size());

  ASSERT_TRUE(store.RotObject("b", RotKind::kTruncate).ok());
  ASSERT_TRUE(inner_.Get("b", &out).ok());
  EXPECT_LT(out.size(), truth.size());

  ASSERT_TRUE(store.RotObject("c", RotKind::kDrop).ok());
  EXPECT_TRUE(inner_.Get("c", &out).IsNotFound());

  // Rot happens inside the medium: no op index consumed, reads report OK.
  EXPECT_EQ(store.op_count(), ops_before);
  EXPECT_EQ(store.fault_stats().rot_injected.load(), 3u);
  ASSERT_TRUE(store.Get("a", &out).ok());
  EXPECT_NE(out, truth);

  // Deterministic: rotting the same key twice undoes the same bit flip.
  ASSERT_TRUE(store.RotObject("a", RotKind::kFlipBit).ok());
  ASSERT_TRUE(inner_.Get("a", &out).ok());
  EXPECT_EQ(out, truth);
}

TEST_F(FaultInjectionTest, WorksOverLocalDiskStore) {
  auto root = std::filesystem::temp_directory_path() /
              ("rottnest_fault_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  {
    SystemClock disk_clock;
    LocalDiskObjectStore disk(root.string(), &disk_clock);
    FaultOptions opts;
    opts.seed = 3;
    opts.transient_fault_rate = 1.0;
    FaultInjectingStore store(&disk, opts);
    EXPECT_TRUE(store.Put("k", Slice(Bytes("v"))).IsUnavailable());
    Buffer out;
    EXPECT_TRUE(disk.Get("k", &out).IsNotFound());
  }
  std::filesystem::remove_all(root);
}

TEST_F(FaultInjectionTest, BaseLatencyAdvancesTheSimulatedClock) {
  FaultOptions opts;
  opts.base_latency_micros = 500;
  FaultInjectingStore store(&inner_, opts);
  store.SetSleeper(SimulatedSleeper(&clock_));
  Micros before = clock_.NowMicros();
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  Buffer out;
  ASSERT_TRUE(store.Get("k", &out).ok());
  EXPECT_EQ(clock_.NowMicros() - before, 1000);  // Two ops, 500 each.
  EXPECT_EQ(store.fault_stats().latency_injected_micros.load(), 1000u);
}

TEST_F(FaultInjectionTest, SlowReadTailIsDeterministicPerSeed) {
  auto run = [this](uint64_t seed) {
    SimulatedClock clock;
    InMemoryObjectStore inner(&clock);
    FaultOptions opts;
    opts.seed = seed;
    opts.slow_read_rate = 0.25;
    opts.slow_read_latency_micros = 10'000;
    FaultInjectingStore store(&inner, opts);
    store.SetSleeper(SimulatedSleeper(&clock));
    ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
    std::vector<bool> slow;
    for (int i = 0; i < 64; ++i) {
      uint64_t before = store.fault_stats().slow_reads_injected.load();
      Buffer out;
      ASSERT_TRUE(store.Get("k", &out).ok());
      slow.push_back(store.fault_stats().slow_reads_injected.load() >
                     before);
    }
    slow_patterns_.push_back(std::move(slow));
  };
  run(7);
  run(7);
  run(8);
  ASSERT_EQ(slow_patterns_.size(), 3u);
  EXPECT_EQ(slow_patterns_[0], slow_patterns_[1]);  // Same seed, same tail.
  EXPECT_NE(slow_patterns_[0], slow_patterns_[2]);  // Seeds differ.
  // Roughly a quarter of reads drew the tail (loose: just "some, not all").
  size_t count = 0;
  for (bool b : slow_patterns_[0]) count += b;
  EXPECT_GT(count, 4u);
  EXPECT_LT(count, 32u);
}

TEST_F(FaultInjectionTest, SlowTailOnlyAppliesToReads) {
  FaultOptions opts;
  opts.seed = 3;
  opts.slow_read_rate = 1.0;  // EVERY read is slow...
  opts.slow_read_latency_micros = 1'000;
  FaultInjectingStore store(&inner_, opts);
  store.SetSleeper(SimulatedSleeper(&clock_));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Put("k" + std::to_string(i), Slice(Bytes("v"))).ok());
  }
  EXPECT_EQ(store.fault_stats().slow_reads_injected.load(), 0u);
  EXPECT_EQ(clock_.NowMicros(), 0);  // ...but writes never draw the tail.
  Buffer out;
  ASSERT_TRUE(store.Get("k0", &out).ok());
  EXPECT_EQ(store.fault_stats().slow_reads_injected.load(), 1u);
  EXPECT_EQ(clock_.NowMicros(), 1'000);
}

TEST_F(FaultInjectionTest, BrownOutWindowSlowsMatchingOpsOnly) {
  FaultInjectingStore store(&inner_);
  store.SetSleeper(SimulatedSleeper(&clock_));
  ASSERT_TRUE(store.Put("idx/a", Slice(Bytes("v"))).ok());
  ASSERT_TRUE(store.Put("data/b", Slice(Bytes("v"))).ok());
  // Index keys brown out between t=1000 and t=2000 (store clock).
  store.AddBrownOut(BrownOut{1'000, 2'000, "idx/", 300});

  Buffer out;
  // t=0: before the window — full speed.
  ASSERT_TRUE(store.Get("idx/a", &out).ok());
  EXPECT_EQ(clock_.NowMicros(), 0);

  clock_.SetMicros(1'000);
  // Inside the window: matching keys pay, non-matching keys do not.
  ASSERT_TRUE(store.Get("idx/a", &out).ok());
  EXPECT_EQ(clock_.NowMicros(), 1'300);
  ASSERT_TRUE(store.Get("data/b", &out).ok());
  EXPECT_EQ(clock_.NowMicros(), 1'300);
  EXPECT_EQ(store.fault_stats().brownout_ops.load(), 1u);

  clock_.SetMicros(2'000);  // End is exclusive: the brown-out has lifted.
  ASSERT_TRUE(store.Get("idx/a", &out).ok());
  EXPECT_EQ(clock_.NowMicros(), 2'000);
  EXPECT_EQ(store.fault_stats().brownout_ops.load(), 1u);
}

TEST_F(FaultInjectionTest, CrashRefusalsSkipInjectedLatency) {
  FaultOptions opts;
  opts.base_latency_micros = 500;
  FaultInjectingStore store(&inner_, opts);
  store.SetSleeper(SimulatedSleeper(&clock_));
  store.SetCrashAtOp(0, CrashMode::kBeforeOp);
  Buffer out;
  EXPECT_FALSE(store.Get("k", &out).ok());  // Crashed.
  EXPECT_FALSE(store.Get("k", &out).ok());  // Dead process stays dead.
  // A dead store answers instantly — refusals model a closed socket, not a
  // slow disk.
  EXPECT_EQ(clock_.NowMicros(), 0);
  EXPECT_EQ(store.fault_stats().latency_injected_micros.load(), 0u);
}

TEST_F(FaultInjectionTest, LatencyRatesDoNotPerturbOldSeedSchedules) {
  // PRNG discipline: latency draws happen only when slow_read_rate > 0, so
  // a fault schedule recorded under an old seed reproduces exactly when
  // latency knobs stay off — bisecting a chaos failure cannot be derailed
  // by unrelated new features.
  auto fault_ops = [this](FaultOptions opts) {
    SimulatedClock clock;
    InMemoryObjectStore inner(&clock);
    opts.seed = 1234;
    opts.transient_fault_rate = 0.3;
    FaultInjectingStore store(&inner, opts);
    store.SetSleeper(SimulatedSleeper(&clock));
    std::vector<bool> failed;
    for (int i = 0; i < 32; ++i) {
      failed.push_back(!store.Put("k", Slice(Bytes("v"))).ok());
    }
    return failed;
  };
  FaultOptions plain;
  FaultOptions with_base_latency;
  with_base_latency.base_latency_micros = 700;  // No PRNG draw involved.
  EXPECT_EQ(fault_ops(plain), fault_ops(with_base_latency));
}

TEST_F(FaultInjectionTest, GetRangeAndListAreInterceptedToo) {
  ASSERT_TRUE(inner_.Put("k", Slice(Bytes("0123456789"))).ok());
  FaultOptions opts;
  opts.seed = 1;
  opts.transient_fault_rate = 1.0;
  FaultInjectingStore store(&inner_, opts);
  Buffer out;
  EXPECT_TRUE(store.Get("k", &out).IsUnavailable());
  EXPECT_TRUE(store.GetRange("k", 0, 4, &out).IsUnavailable());
  ObjectMeta meta;
  EXPECT_TRUE(store.Head("k", &meta).IsUnavailable());
  std::vector<ObjectMeta> listing;
  EXPECT_TRUE(store.List("", &listing).IsUnavailable());
  EXPECT_TRUE(store.Delete("k").IsUnavailable());
  EXPECT_EQ(store.fault_stats().transient_injected.load(), 5u);
}

}  // namespace
}  // namespace rottnest::objectstore
