#include "objectstore/retry.h"

#include <gtest/gtest.h>

#include "objectstore/fault_injection.h"

namespace rottnest::objectstore {
namespace {

Buffer Bytes(const std::string& s) { return Buffer(s.begin(), s.end()); }

class RetryTest : public ::testing::Test {
 protected:
  RetryPolicy FastPolicy() {
    RetryPolicy p;
    p.max_attempts = 5;
    p.initial_backoff_micros = 1000;
    p.max_backoff_micros = 8000;
    return p;
  }

  SimulatedClock clock_;
  InMemoryObjectStore inner_{&clock_};
};

TEST_F(RetryTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.initial_backoff_micros = 1000;
  p.max_backoff_micros = 6000;
  p.multiplier = 2.0;
  p.jitter = 0;  // Deterministic shape without jitter.
  EXPECT_EQ(p.BackoffFor(1, nullptr), 1000);
  EXPECT_EQ(p.BackoffFor(2, nullptr), 2000);
  EXPECT_EQ(p.BackoffFor(3, nullptr), 4000);
  EXPECT_EQ(p.BackoffFor(4, nullptr), 6000);  // Capped.
  EXPECT_EQ(p.BackoffFor(10, nullptr), 6000);
}

TEST_F(RetryTest, JitterIsDeterministicAndOnlyShortens) {
  RetryPolicy p;
  p.initial_backoff_micros = 10000;
  p.jitter = 0.5;
  Random rng_a(42), rng_b(42);
  for (int retry = 1; retry <= 6; ++retry) {
    Micros a = p.BackoffFor(retry, &rng_a);
    Micros b = p.BackoffFor(retry, &rng_b);
    EXPECT_EQ(a, b);  // Same seed, same waits.
    Micros full = p.BackoffFor(retry, nullptr);
    EXPECT_LE(a, full);           // Jitter shaves, never extends.
    EXPECT_GE(a, full / 2 - 1);   // ...by at most the jitter fraction.
  }
}

TEST_F(RetryTest, AbsorbsTransientFaults) {
  FaultInjectingStore faulty(&inner_);
  // Ops 0 and 1 (the first two attempts) fail transiently; the third lands.
  faulty.ScheduleFault(0, Status::Unavailable("x"), false);
  faulty.ScheduleFault(1, Status::Unavailable("x"), false);
  RetryingStore store(&faulty, FastPolicy(), SimulatedSleeper(&clock_));
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  Buffer out;
  ASSERT_TRUE(inner_.Get("k", &out).ok());
  EXPECT_EQ(store.retry_stats().operations.load(), 1u);
  EXPECT_EQ(store.retry_stats().attempts.load(), 3u);
  EXPECT_EQ(store.retry_stats().retries.load(), 2u);
  EXPECT_EQ(store.retry_stats().budget_exhausted.load(), 0u);
}

TEST_F(RetryTest, BackoffAdvancesSimulatedTimeOnly) {
  FaultInjectingStore faulty(&inner_);
  faulty.ScheduleFault(0, Status::Unavailable("x"), false);
  RetryingStore store(&faulty, FastPolicy(), SimulatedSleeper(&clock_));
  Micros before = clock_.NowMicros();
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  Micros slept = clock_.NowMicros() - before;
  EXPECT_GT(slept, 0);
  EXPECT_EQ(static_cast<uint64_t>(slept),
            store.retry_stats().backoff_micros.load());
}

TEST_F(RetryTest, BudgetExhaustionSurfacesUnavailable) {
  FaultOptions opts;
  opts.seed = 1;
  opts.transient_fault_rate = 1.0;  // Nothing ever succeeds.
  FaultInjectingStore faulty(&inner_, opts);
  RetryingStore store(&faulty, FastPolicy(), SimulatedSleeper(&clock_));
  Buffer out;
  EXPECT_TRUE(store.Get("k", &out).IsUnavailable());
  EXPECT_EQ(store.retry_stats().attempts.load(), 5u);
  EXPECT_EQ(store.retry_stats().budget_exhausted.load(), 1u);
}

TEST_F(RetryTest, NonTransientErrorsAreNotRetried) {
  RetryingStore store(&inner_, FastPolicy(), SimulatedSleeper(&clock_));
  Buffer out;
  EXPECT_TRUE(store.Get("missing", &out).IsNotFound());
  EXPECT_EQ(store.retry_stats().attempts.load(), 1u);  // An answer, not a fault.
  EXPECT_EQ(store.retry_stats().retries.load(), 0u);
}

TEST_F(RetryTest, AmbiguousPutIfAbsentResolvesToSuccess) {
  // The nastiest case: our conditional put LANDS but we see an error. A
  // blind retry would hit AlreadyExists and report a lost race; the store
  // must instead recognize the object as ours.
  FaultInjectingStore faulty(&inner_);
  faulty.ScheduleFault(0, Status::Unavailable("timeout"),
                       /*side_effect_lands=*/true);
  RetryingStore store(&faulty, FastPolicy(), SimulatedSleeper(&clock_));
  ASSERT_TRUE(store.PutIfAbsent("log/7", Slice(Bytes("mine"))).ok());
  EXPECT_EQ(store.retry_stats().ambiguous_resolved.load(), 1u);
  Buffer out;
  ASSERT_TRUE(inner_.Get("log/7", &out).ok());
  EXPECT_EQ(out, Bytes("mine"));
}

TEST_F(RetryTest, AmbiguousPutIfAbsentResolvesToConflict) {
  // Transient error on the conditional put, and meanwhile someone ELSE
  // committed the version: resolution must report the lost race.
  FaultInjectingStore faulty(&inner_);
  faulty.ScheduleFault(0, Status::Unavailable("timeout"),
                       /*side_effect_lands=*/false);
  // The concurrent winner lands right after our failed attempt.
  bool raced = false;
  faulty.SetFailurePoint(
      [&](const std::string& op, const std::string& key) -> Status {
        if (op == "get" && !raced) {
          raced = true;
          return inner_.Put("log/7", Slice(Bytes("theirs")));
        }
        return Status::OK();
      });
  RetryingStore store(&faulty, FastPolicy(), SimulatedSleeper(&clock_));
  EXPECT_TRUE(store.PutIfAbsent("log/7", Slice(Bytes("mine")))
                  .IsAlreadyExists());
  Buffer out;
  ASSERT_TRUE(inner_.Get("log/7", &out).ok());
  EXPECT_EQ(out, Bytes("theirs"));
}

TEST_F(RetryTest, FirstAttemptConflictIsGenuine) {
  // Without any ambiguity, AlreadyExists passes straight through.
  ASSERT_TRUE(inner_.Put("log/0", Slice(Bytes("winner"))).ok());
  RetryingStore store(&inner_, FastPolicy(), SimulatedSleeper(&clock_));
  EXPECT_TRUE(store.PutIfAbsent("log/0", Slice(Bytes("mine")))
                  .IsAlreadyExists());
  EXPECT_EQ(store.retry_stats().attempts.load(), 1u);
  EXPECT_EQ(store.retry_stats().ambiguous_resolved.load(), 0u);
}

TEST_F(RetryTest, CorruptionAndNotFoundAreNeverRetried) {
  // Anti-entropy contract: rot is an ANSWER about the object's state, not a
  // transient fault — a backoff loop must never mask Corruption or NotFound
  // (retrying would re-read the same damaged bytes and waste the budget).
  ASSERT_TRUE(inner_.Put("k", Slice(Bytes("v"))).ok());
  FaultInjectingStore faulty(&inner_);
  RetryingStore store(&faulty, FastPolicy(), SimulatedSleeper(&clock_));

  faulty.ScheduleFault(faulty.op_count(), Status::Corruption("bit rot"),
                       /*side_effect_lands=*/false);
  Buffer out;
  EXPECT_TRUE(store.Get("k", &out).IsCorruption());
  EXPECT_EQ(store.retry_stats().attempts.load(), 1u);
  EXPECT_EQ(store.retry_stats().retries.load(), 0u);

  faulty.ScheduleFault(faulty.op_count(), Status::NotFound("dropped"),
                       /*side_effect_lands=*/false);
  EXPECT_TRUE(store.Get("k", &out).IsNotFound());
  EXPECT_EQ(store.retry_stats().attempts.load(), 2u);
  EXPECT_EQ(store.retry_stats().retries.load(), 0u);

  // Control: Unavailable on the same key IS retried.
  faulty.ScheduleFault(faulty.op_count(), Status::Unavailable("throttled"),
                       /*side_effect_lands=*/false);
  EXPECT_TRUE(store.Get("k", &out).ok());
  EXPECT_EQ(store.retry_stats().retries.load(), 1u);
}

TEST_F(RetryTest, HighFaultRateStillCompletesEventually) {
  // Determinism + budget: a 30% fault rate over many ops completes with
  // zero exhausted budgets under an 8-attempt policy.
  FaultOptions opts;
  opts.seed = 99;
  opts.transient_fault_rate = 0.3;
  FaultInjectingStore faulty(&inner_, opts);
  RetryPolicy policy;  // Default: 8 attempts.
  policy.initial_backoff_micros = 100;
  RetryingStore store(&faulty, policy, SimulatedSleeper(&clock_));
  for (int i = 0; i < 100; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(store.Put(key, Slice(Bytes(key))).ok());
    Buffer out;
    ASSERT_TRUE(store.Get(key, &out).ok());
    EXPECT_EQ(out, Bytes(key));
  }
  EXPECT_EQ(store.retry_stats().budget_exhausted.load(), 0u);
  EXPECT_GT(store.retry_stats().retries.load(), 0u);
}

TEST_F(RetryTest, BackoffNeverSleepsPastTheDeadline) {
  // Every attempt fails; the operation deadline is smaller than the retry
  // budget's total backoff, so the loop must stop EARLY with
  // DeadlineExceeded — and the clock must never pass the deadline (the
  // whole point: no sleep that cannot possibly help).
  FaultInjectingStore faulty(&inner_);
  faulty.SetFailurePoint([](const std::string&, const std::string&) {
    return Status::Unavailable("down for good");
  });
  RetryingStore store(&faulty, FastPolicy(), SimulatedSleeper(&clock_));

  Micros budget = 2'500;  // Backoffs are 1000, 2000, 4000... (jittered ≤).
  Deadline deadline = Deadline::After(&clock_, budget);
  ScopedOpDeadline ambient(deadline);
  Buffer out;
  Status s = store.Get("k", &out);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_LT(clock_.NowMicros(), budget);  // Never slept past the deadline.
  // Fewer attempts than the policy allows: the deadline cut the loop.
  EXPECT_LT(store.retry_stats().attempts.load(), 5u);
  EXPECT_GE(store.retry_stats().attempts.load(), 1u);
}

TEST_F(RetryTest, ExpiredDeadlineFailsBeforeTouchingTheStore) {
  FaultInjectingStore faulty(&inner_);
  RetryingStore store(&faulty, FastPolicy(), SimulatedSleeper(&clock_));
  Deadline deadline = Deadline::After(&clock_, 100);
  clock_.Advance(101);  // Already expired on entry.
  ScopedOpDeadline ambient(deadline);
  uint64_t ops_before = faulty.op_count();
  Buffer out;
  Status s = store.Get("k", &out);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_EQ(faulty.op_count(), ops_before);  // Zero wasted attempts.
}

TEST_F(RetryTest, NoAmbientDeadlineMeansFullRetryBudget) {
  // Without an installed deadline the retry loop behaves exactly as
  // before deadlines existed: all attempts, then the terminal error.
  FaultInjectingStore faulty(&inner_);
  faulty.SetFailurePoint([](const std::string&, const std::string&) {
    return Status::Unavailable("down for good");
  });
  RetryingStore store(&faulty, FastPolicy(), SimulatedSleeper(&clock_));
  Buffer out;
  Status s = store.Get("k", &out);
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(store.retry_stats().attempts.load(), 5u);
  EXPECT_EQ(store.retry_stats().budget_exhausted.load(), 1u);
}

}  // namespace
}  // namespace rottnest::objectstore
