#include "objectstore/hedging_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace rottnest::objectstore {
namespace {

Buffer Bytes(const std::string& s) { return Buffer(s.begin(), s.end()); }

/// Inner store whose Get/GetRange sleeps for a per-call wall latency —
/// hedging reacts to physical slowness, so these tests use real (small)
/// sleeps. `latency_for(n)` maps the 0-based read ordinal to its delay.
class LatencyStore : public ObjectStore {
 public:
  explicit LatencyStore(ObjectStore* inner) : inner_(inner) {}

  std::function<Micros(int)> latency_for;

  Status Put(const std::string& key, Slice data) override {
    return inner_->Put(key, data);
  }
  Status PutIfAbsent(const std::string& key, Slice data) override {
    return inner_->PutIfAbsent(key, data);
  }
  Status Get(const std::string& key, Buffer* out) override {
    SleepForCall();
    return inner_->Get(key, out);
  }
  Status GetRange(const std::string& key, uint64_t offset, uint64_t length,
                  Buffer* out) override {
    SleepForCall();
    return inner_->GetRange(key, offset, length, out);
  }
  Status Head(const std::string& key, ObjectMeta* out) override {
    return inner_->Head(key, out);
  }
  Status List(const std::string& prefix,
              std::vector<ObjectMeta>* out) override {
    return inner_->List(prefix, out);
  }
  Status Delete(const std::string& key) override {
    return inner_->Delete(key);
  }
  const Clock& clock() const override { return inner_->clock(); }
  const IoStats& stats() const override { return inner_->stats(); }

  int reads() const { return reads_.load(); }

 private:
  void SleepForCall() {
    int n = reads_.fetch_add(1);
    Micros d = latency_for ? latency_for(n) : 0;
    if (d > 0) std::this_thread::sleep_for(std::chrono::microseconds(d));
  }

  ObjectStore* inner_;
  std::atomic<int> reads_{0};
};

class HedgingTest : public ::testing::Test {
 protected:
  SimulatedClock clock_;
  InMemoryObjectStore inner_{&clock_};
  LatencyStore slow_{&inner_};
};

TEST_F(HedgingTest, DisabledIsTransparent) {
  HedgeOptions opts;
  opts.enabled = false;
  HedgingStore store(&slow_, opts);
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  Buffer out;
  ASSERT_TRUE(store.Get("k", &out).ok());
  EXPECT_EQ(out, Bytes("v"));
  EXPECT_EQ(store.hedge_stats().reads.load(), 0u);
  EXPECT_EQ(store.hedge_stats().hedges_issued.load(), 0u);
}

TEST_F(HedgingTest, FastReadDoesNotHedge) {
  HedgeOptions opts;
  opts.initial_delay_micros = 200'000;  // Far beyond an in-memory read.
  opts.threads = 2;
  HedgingStore store(&slow_, opts);
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  Buffer out;
  ASSERT_TRUE(store.Get("k", &out).ok());
  EXPECT_EQ(out, Bytes("v"));
  store.Quiesce();
  EXPECT_EQ(store.hedge_stats().reads.load(), 1u);
  EXPECT_EQ(store.hedge_stats().hedges_issued.load(), 0u);
  EXPECT_EQ(slow_.reads(), 1);
}

TEST_F(HedgingTest, SlowPrimaryHedgedAndHedgeWins) {
  // Primary sleeps far beyond the hedge delay; the hedge is instant.
  slow_.latency_for = [](int n) -> Micros { return n == 0 ? 150'000 : 0; };
  HedgeOptions opts;
  opts.initial_delay_micros = 5'000;
  opts.threads = 2;
  HedgingStore store(&slow_, opts);
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  Buffer out;
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(store.Get("k", &out).ok());
  auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  EXPECT_EQ(out, Bytes("v"));
  // The hedged read returns well before the 150ms primary completes.
  EXPECT_LT(wall, 100'000);
  store.Quiesce();  // Drain the losing primary before checking counters.
  EXPECT_EQ(store.hedge_stats().reads.load(), 1u);
  EXPECT_EQ(store.hedge_stats().hedges_issued.load(), 1u);
  EXPECT_EQ(store.hedge_stats().hedges_won.load(), 1u);
  // The request-cost invariant: physical reads == logical reads + hedges.
  EXPECT_EQ(slow_.reads(),
            static_cast<int>(store.hedge_stats().reads.load() +
                             store.hedge_stats().hedges_issued.load()));
}

TEST_F(HedgingTest, PrimaryWinsWhenHedgeIsSlower) {
  // Primary sleeps past the hedge delay but finishes long before the hedge.
  slow_.latency_for = [](int n) -> Micros {
    return n == 0 ? 30'000 : 300'000;
  };
  HedgeOptions opts;
  opts.initial_delay_micros = 5'000;
  opts.threads = 2;
  HedgingStore store(&slow_, opts);
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  Buffer out;
  ASSERT_TRUE(store.Get("k", &out).ok());
  EXPECT_EQ(out, Bytes("v"));
  store.Quiesce();
  EXPECT_EQ(store.hedge_stats().hedges_issued.load(), 1u);
  EXPECT_EQ(store.hedge_stats().primary_won_after_hedge.load(), 1u);
  EXPECT_EQ(store.hedge_stats().hedges_won.load(), 0u);
}

TEST_F(HedgingTest, BothAttemptsFailingReportsError) {
  slow_.latency_for = [](int) -> Micros { return 2'000; };
  HedgeOptions opts;
  opts.initial_delay_micros = 100;  // Hedge almost immediately.
  opts.threads = 2;
  HedgingStore store(&slow_, opts);
  Buffer out;
  Status s = store.Get("missing", &out);  // Key does not exist.
  EXPECT_TRUE(s.IsNotFound());
  store.Quiesce();
  EXPECT_EQ(store.hedge_stats().failures.load(), 1u);
  EXPECT_EQ(store.hedge_stats().hedges_won.load(), 0u);
}

TEST_F(HedgingTest, HedgeDelayDerivesFromObservedQuantile) {
  HedgeOptions opts;
  opts.initial_delay_micros = 80'000;
  opts.min_samples = 8;
  opts.min_delay_micros = 2'000;
  opts.threads = 2;
  HedgingStore store(&slow_, opts);
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  // Before any samples: the configured initial delay.
  EXPECT_EQ(store.CurrentHedgeDelayMicros(), 80'000);
  Buffer out;
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(store.Get("k", &out).ok());
  store.Quiesce();
  // In-memory reads are ~instant, so the p95 clamps up to the floor —
  // far below the initial delay.
  EXPECT_EQ(store.CurrentHedgeDelayMicros(), 2'000);
}

TEST_F(HedgingTest, MetricsMirrorHedgeStats) {
  slow_.latency_for = [](int n) -> Micros { return n == 0 ? 150'000 : 0; };
  HedgeOptions opts;
  opts.initial_delay_micros = 5'000;
  opts.threads = 2;
  HedgingStore store(&slow_, opts);
  obs::MetricsRegistry registry;
  store.AttachMetrics(&registry, "test");
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  Buffer out;
  ASSERT_TRUE(store.Get("k", &out).ok());
  store.Quiesce();
  EXPECT_EQ(registry.GetCounter("hedge.test.reads")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("hedge.test.hedges_issued")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("hedge.test.hedges_won")->value(), 1u);
}

TEST_F(HedgingTest, WritesAndMetadataPassThrough) {
  HedgeOptions opts;
  opts.threads = 2;
  HedgingStore store(&slow_, opts);
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  ObjectMeta meta;
  ASSERT_TRUE(store.Head("k", &meta).ok());
  std::vector<ObjectMeta> listing;
  ASSERT_TRUE(store.List("", &listing).ok());
  EXPECT_EQ(listing.size(), 1u);
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_EQ(store.hedge_stats().reads.load(), 0u);  // None were hedgeable.
}

// TSAN cancellation hygiene: a losing hedge outlives the caller's frame
// (the key string and output buffer die immediately after Get returns);
// the loser must only touch its shared_ptr-owned flight state. Run under
// `ctest -L tail` in the TSAN job.
TEST_F(HedgingTest, LosingAttemptNeverTouchesCallerState) {
  slow_.latency_for = [](int n) -> Micros {
    return n % 2 == 0 ? 20'000 : 0;  // Every primary slow, every hedge fast.
  };
  HedgeOptions opts;
  opts.initial_delay_micros = 1'000;
  opts.threads = 4;
  HedgingStore store(&slow_, opts);
  ASSERT_TRUE(store.Put("shared", Slice(Bytes("v"))).ok());
  for (int i = 0; i < 8; ++i) {
    // Caller-owned state scoped tighter than the losing primary's lifetime.
    std::string key = "shared";
    Buffer out;
    ASSERT_TRUE(store.Get(key, &out).ok());
    EXPECT_EQ(out, Bytes("v"));
  }
  store.Quiesce();
  EXPECT_EQ(store.hedge_stats().reads.load(), 8u);
}

// TSAN: concurrent hedged readers against one store — flights, the latency
// window, and the worker queue are all shared mutable state.
TEST_F(HedgingTest, ConcurrentHedgedReadsAreClean) {
  slow_.latency_for = [](int n) -> Micros { return (n % 3) * 2'000; };
  HedgeOptions opts;
  opts.initial_delay_micros = 1'000;
  opts.threads = 4;
  HedgingStore store(&slow_, opts);
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        Buffer out;
        if (!store.Get("k", &out).ok() || !(out == Bytes("v"))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  store.Quiesce();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.hedge_stats().reads.load(), 40u);
}

}  // namespace
}  // namespace rottnest::objectstore
