// Unit tests for the sharded read-through CachingStore: read-through
// semantics, LRU capacity enforcement, hit/miss/evict accounting, shard
// behavior, invalidation, error paths, and concurrent readers (the latter
// doubles as the TSan target — see .github/workflows/sanitize.yml).
#include "objectstore/caching_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"

namespace rottnest::objectstore {
namespace {

Buffer Bytes(const std::string& s) { return Buffer(s.begin(), s.end()); }

class CachingStoreTest : public ::testing::Test {
 protected:
  void PutObject(const std::string& key, size_t size, char fill = 'x') {
    std::string v(size, fill);
    ASSERT_TRUE(inner_.Put(key, Slice(v)).ok());
  }

  SimulatedClock clock_;
  InMemoryObjectStore inner_{&clock_};
};

TEST_F(CachingStoreTest, ReadThroughServesRepeatsFromCache) {
  PutObject("a", 100);
  CachingStore cache(&inner_, {});

  Buffer first, second;
  ASSERT_TRUE(cache.GetRange("a", 10, 20, &first).ok());
  ASSERT_TRUE(cache.GetRange("a", 10, 20, &second).ok());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 20u);

  // One physical GET; the repeat was a hit.
  EXPECT_EQ(inner_.stats().gets.load(), 1u);
  EXPECT_EQ(cache.stats().gets.load(), 1u);
  EXPECT_EQ(cache.stats().cache_hits.load(), 1u);
  EXPECT_EQ(cache.stats().cache_misses.load(), 1u);
}

TEST_F(CachingStoreTest, DistinctRangesAreDistinctEntries) {
  PutObject("a", 100);
  CachingStore cache(&inner_, {});

  Buffer out;
  ASSERT_TRUE(cache.GetRange("a", 0, 10, &out).ok());
  ASSERT_TRUE(cache.GetRange("a", 0, 20, &out).ok());  // Different length.
  ASSERT_TRUE(cache.GetRange("a", 5, 10, &out).ok());  // Different offset.
  ASSERT_TRUE(cache.Get("a", &out).ok());              // Whole object.
  EXPECT_EQ(cache.stats().cache_misses.load(), 4u);
  EXPECT_EQ(cache.EntryCount(), 4u);

  // Each repeats as its own hit.
  ASSERT_TRUE(cache.GetRange("a", 0, 10, &out).ok());
  ASSERT_TRUE(cache.Get("a", &out).ok());
  EXPECT_EQ(cache.stats().cache_hits.load(), 2u);
}

TEST_F(CachingStoreTest, WholeObjectGetRoundTrips) {
  ASSERT_TRUE(inner_.Put("k", Slice(Bytes("hello world"))).ok());
  CachingStore cache(&inner_, {});
  Buffer a, b;
  ASSERT_TRUE(cache.Get("k", &a).ok());
  ASSERT_TRUE(cache.Get("k", &b).ok());
  EXPECT_EQ(a, Bytes("hello world"));
  EXPECT_EQ(b, Bytes("hello world"));
  EXPECT_EQ(inner_.stats().gets.load(), 1u);
}

TEST_F(CachingStoreTest, CapacityEvictsLeastRecentlyUsed) {
  for (int i = 0; i < 8; ++i) PutObject("k" + std::to_string(i), 1000);
  CacheOptions opts;
  opts.shards = 1;  // One LRU so eviction order is fully observable.
  // Room for ~3 entries of ~1066 charge (payload + key + overhead).
  opts.capacity_bytes = 3400;
  CachingStore cache(&inner_, opts);

  Buffer out;
  ASSERT_TRUE(cache.Get("k0", &out).ok());
  ASSERT_TRUE(cache.Get("k1", &out).ok());
  ASSERT_TRUE(cache.Get("k2", &out).ok());
  EXPECT_EQ(cache.stats().cache_evictions.load(), 0u);
  EXPECT_EQ(cache.EntryCount(), 3u);

  // Touch k0 so k1 becomes the LRU victim.
  ASSERT_TRUE(cache.Get("k0", &out).ok());
  ASSERT_TRUE(cache.Get("k3", &out).ok());  // Evicts k1.
  EXPECT_EQ(cache.stats().cache_evictions.load(), 1u);

  uint64_t gets_before = inner_.stats().gets.load();
  ASSERT_TRUE(cache.Get("k0", &out).ok());  // Still resident.
  ASSERT_TRUE(cache.Get("k3", &out).ok());  // Still resident.
  EXPECT_EQ(inner_.stats().gets.load(), gets_before);
  ASSERT_TRUE(cache.Get("k1", &out).ok());  // Evicted: physical re-fetch.
  EXPECT_EQ(inner_.stats().gets.load(), gets_before + 1);

  EXPECT_LE(cache.ResidentBytes(), opts.capacity_bytes);
  EXPECT_EQ(cache.ResidentBytes(), cache.stats().cache_bytes.load());
}

TEST_F(CachingStoreTest, EntriesLargerThanShardBudgetAreNotCached) {
  PutObject("big", 10000);
  CacheOptions opts;
  opts.capacity_bytes = 8000;
  opts.shards = 4;  // 2000 bytes per shard < the object.
  CachingStore cache(&inner_, opts);

  Buffer out;
  ASSERT_TRUE(cache.Get("big", &out).ok());
  ASSERT_TRUE(cache.Get("big", &out).ok());
  EXPECT_EQ(cache.stats().cache_hits.load(), 0u);  // Never resident.
  EXPECT_EQ(cache.EntryCount(), 0u);
  EXPECT_EQ(inner_.stats().gets.load(), 2u);
}

TEST_F(CachingStoreTest, ShardsEvictIndependently) {
  // Fill well past total capacity across many keys: every shard must end at
  // or under its own slice of the budget.
  for (int i = 0; i < 64; ++i) PutObject("k" + std::to_string(i), 500);
  CacheOptions opts;
  opts.capacity_bytes = 8192;
  opts.shards = 4;
  CachingStore cache(&inner_, opts);
  Buffer out;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(cache.Get("k" + std::to_string(i), &out).ok());
  }
  EXPECT_GT(cache.stats().cache_evictions.load(), 0u);
  EXPECT_LE(cache.ResidentBytes(), opts.capacity_bytes);
  EXPECT_GT(cache.EntryCount(), 0u);
}

TEST_F(CachingStoreTest, HeadIsCachedWhenEnabled) {
  PutObject("a", 123);
  CachingStore cache(&inner_, {});
  ObjectMeta m1, m2;
  ASSERT_TRUE(cache.Head("a", &m1).ok());
  ASSERT_TRUE(cache.Head("a", &m2).ok());
  EXPECT_EQ(m1.size, 123u);
  EXPECT_EQ(m2.size, 123u);
  EXPECT_EQ(inner_.stats().heads.load(), 1u);
  EXPECT_EQ(cache.stats().cache_hits.load(), 1u);

  CacheOptions no_heads;
  no_heads.cache_heads = false;
  CachingStore passthrough(&inner_, no_heads);
  ASSERT_TRUE(passthrough.Head("a", &m1).ok());
  ASSERT_TRUE(passthrough.Head("a", &m1).ok());
  EXPECT_EQ(passthrough.stats().cache_hits.load(), 0u);
  EXPECT_EQ(inner_.stats().heads.load(), 3u);
}

TEST_F(CachingStoreTest, PutAndDeleteInvalidate) {
  PutObject("a", 50, 'x');
  CachingStore cache(&inner_, {});
  Buffer out;
  ASSERT_TRUE(cache.GetRange("a", 0, 10, &out).ok());
  ObjectMeta meta;
  ASSERT_TRUE(cache.Head("a", &meta).ok());
  EXPECT_EQ(cache.EntryCount(), 2u);

  // Overwrite through the cache: stale bytes must not survive.
  std::string v(50, 'y');
  ASSERT_TRUE(cache.Put("a", Slice(v)).ok());
  EXPECT_EQ(cache.EntryCount(), 0u);
  ASSERT_TRUE(cache.GetRange("a", 0, 10, &out).ok());
  EXPECT_EQ(out, Bytes("yyyyyyyyyy"));

  // Delete through the cache: the key must not resurrect from cache.
  ASSERT_TRUE(cache.Delete("a").ok());
  EXPECT_EQ(cache.EntryCount(), 0u);
  EXPECT_TRUE(cache.GetRange("a", 0, 10, &out).IsNotFound());
}

TEST_F(CachingStoreTest, ClearDropsEverything) {
  PutObject("a", 100);
  PutObject("b", 100);
  CachingStore cache(&inner_, {});
  Buffer out;
  ASSERT_TRUE(cache.Get("a", &out).ok());
  ASSERT_TRUE(cache.Get("b", &out).ok());
  EXPECT_GT(cache.ResidentBytes(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.EntryCount(), 0u);
  EXPECT_EQ(cache.ResidentBytes(), 0u);
  ASSERT_TRUE(cache.Get("a", &out).ok());  // Re-fetches, re-caches.
  EXPECT_EQ(inner_.stats().gets.load(), 3u);
}

TEST_F(CachingStoreTest, ErrorsAreNeverCached) {
  PutObject("a", 100);
  FaultInjectingStore faulty(&inner_);
  CachingStore cache(&faulty, {});

  // Every read fails at the inner store: nothing may enter the cache.
  faulty.SetFailurePoint([](const std::string&, const std::string&) {
    return Status::Unavailable("injected");
  });
  Buffer out;
  EXPECT_TRUE(cache.GetRange("a", 0, 10, &out).IsUnavailable());
  EXPECT_EQ(cache.EntryCount(), 0u);

  // Once the store heals, the same read succeeds and caches normally.
  faulty.SetFailurePoint({});
  ASSERT_TRUE(cache.GetRange("a", 0, 10, &out).ok());
  ASSERT_TRUE(cache.GetRange("a", 0, 10, &out).ok());
  EXPECT_EQ(cache.stats().cache_hits.load(), 1u);
}

TEST_F(CachingStoreTest, ConcurrentReadersUnderEvictionPressure) {
  // Budget far below the working set, so readers race against constant
  // eviction; run under ROTTNEST_SANITIZE=thread to verify the locking.
  constexpr int kKeys = 32;
  for (int i = 0; i < kKeys; ++i) PutObject("k" + std::to_string(i), 400);
  CacheOptions opts;
  opts.capacity_bytes = 4096;
  opts.shards = 4;
  CachingStore cache(&inner_, opts);

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        std::string key = "k" + std::to_string((i * 7 + t * 13) % kKeys);
        Buffer out;
        ASSERT_TRUE(cache.Get(key, &out).ok());
        ASSERT_EQ(out.size(), 400u);
        ObjectMeta meta;
        ASSERT_TRUE(cache.Head(key, &meta).ok());
        ASSERT_EQ(meta.size, 400u);
      }
    });
  }
  for (auto& t : readers) t.join();

  // Two threads missing one key at once coalesce onto a single leader
  // fetch, so the follower counts as `cache_coalesced`, not hit or miss —
  // the full logical-read identity is what must hold.
  EXPECT_EQ(cache.stats().cache_hits.load() +
                cache.stats().cache_misses.load() +
                cache.stats().cache_coalesced.load(),
            4u * 400u * 2u);
  EXPECT_LE(cache.ResidentBytes(), opts.capacity_bytes);
}

TEST_F(CachingStoreTest, ConcurrentMissesOnOneKeyCoalesceToOneFetch) {
  // Single-flight dedup: N readers missing the SAME key at once must cost
  // ONE physical GET — the leader fetches, followers wait on the flight
  // and copy its result. The inner fetch is artificially slowed so every
  // follower provably arrives while the leader is still in flight.
  PutObject("hot", 256);
  FaultInjectingStore faulty(&inner_);
  faulty.SetFailurePoint([](const std::string& op, const std::string&) {
    if (op == "get") {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    return Status::OK();
  });
  CachingStore cache(&faulty, {});

  constexpr int kReaders = 8;
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      Buffer out;
      if (!cache.Get("hot", &out).ok() || out.size() != 256u) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(inner_.stats().gets.load(), 1u);  // ONE physical fetch.
  EXPECT_EQ(cache.stats().cache_coalesced.load(), kReaders - 1u);
  EXPECT_EQ(cache.stats().cache_misses.load(), 1u);  // The leader's.
  // A later read is a plain hit: the flight left a normal cache entry.
  Buffer out;
  ASSERT_TRUE(cache.Get("hot", &out).ok());
  EXPECT_EQ(cache.stats().cache_hits.load(), 1u);
}

TEST_F(CachingStoreTest, CoalescedFollowersShareTheLeadersError) {
  // When the leader's fetch fails, followers report the SAME error without
  // retrying the store themselves (no retry stampede), and nothing is
  // cached.
  PutObject("hot", 256);
  FaultInjectingStore faulty(&inner_);
  faulty.SetFailurePoint([](const std::string& op, const std::string&) {
    if (op != "get") return Status::OK();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return Status::Unavailable("injected");
  });
  CachingStore cache(&faulty, {});

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  std::atomic<int> unavailable{0};
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      Buffer out;
      if (cache.Get("hot", &out).IsUnavailable()) unavailable.fetch_add(1);
    });
  }
  for (auto& t : readers) t.join();

  EXPECT_EQ(unavailable.load(), kReaders);
  EXPECT_EQ(faulty.op_count(), 1u);  // One attempt served them all.
  EXPECT_EQ(cache.EntryCount(), 0u);
}

TEST_F(CachingStoreTest, WaveLedgerServesEvictedEntriesWithoutRefetch) {
  // The wave ledger widens single-flight dedup to a whole GET wave: inside
  // BeginWave/EndWave a fetched range is re-servable even after the LRU
  // dropped it — the serving engine's cross-query coalescing.
  PutObject("a", 100);
  CachingStore cache(&inner_, {});

  cache.BeginWave();
  Buffer out;
  ASSERT_TRUE(cache.Get("a", &out).ok());  // Leader fetch, ledger-recorded.
  EXPECT_EQ(cache.WaveLedgerEntries(), 1u);
  cache.Clear();  // The LRU forgets; the wave must not.
  ASSERT_TRUE(cache.Get("a", &out).ok());
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(inner_.stats().gets.load(), 1u);  // Still ONE physical GET.
  EXPECT_EQ(cache.stats().cache_wave_hits.load(), 1u);
  // The wave hit re-inserted the entry, so a third read is a plain hit.
  ASSERT_TRUE(cache.Get("a", &out).ok());
  EXPECT_EQ(cache.stats().cache_hits.load(), 1u);
  cache.EndWave();

  // Wave-scoped: the ledger dropped with the wave, so once the LRU forgets
  // too the next read is physical again.
  EXPECT_EQ(cache.WaveLedgerEntries(), 0u);
  cache.Clear();
  ASSERT_TRUE(cache.Get("a", &out).ok());
  EXPECT_EQ(inner_.stats().gets.load(), 2u);
  EXPECT_EQ(cache.stats().cache_wave_hits.load(), 1u);
}

TEST_F(CachingStoreTest, WaveNestingIsRefcounted) {
  PutObject("a", 100);
  CachingStore cache(&inner_, {});
  Buffer out;

  cache.BeginWave();
  cache.BeginWave();  // Nested (a wave member running its own sub-wave).
  ASSERT_TRUE(cache.Get("a", &out).ok());
  cache.EndWave();
  EXPECT_EQ(cache.WaveLedgerEntries(), 1u);  // Outer wave still open.
  cache.Clear();
  ASSERT_TRUE(cache.Get("a", &out).ok());
  EXPECT_EQ(cache.stats().cache_wave_hits.load(), 1u);
  cache.EndWave();
  EXPECT_EQ(cache.WaveLedgerEntries(), 0u);  // Last EndWave drops it.
}

TEST_F(CachingStoreTest, FailedFetchesAreNeverWaveRecorded) {
  // A breaker/outage failure inside a wave must propagate to every query
  // that needs the range — recording it (or any placeholder) would turn
  // one member's failure into silent data for its wave-mates.
  PutObject("a", 100);
  FaultInjectingStore faulty(&inner_);
  CachingStore cache(&faulty, {});
  faulty.SetFailurePoint([](const std::string& op, const std::string&) {
    return op == "get" ? Status::Unavailable("injected") : Status::OK();
  });

  cache.BeginWave();
  Buffer out;
  EXPECT_TRUE(cache.Get("a", &out).IsUnavailable());
  EXPECT_EQ(cache.WaveLedgerEntries(), 0u);
  // A retry inside the SAME wave hits the healed store, not a stale error.
  faulty.SetFailurePoint({});
  ASSERT_TRUE(cache.Get("a", &out).ok());
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(cache.WaveLedgerEntries(), 1u);
  cache.EndWave();
}

TEST_F(CachingStoreTest, WaveLedgerByteCapStopsRecording) {
  // Past wave_ledger_bytes further fetches are simply not recorded —
  // coalescing stops growing, correctness is untouched.
  PutObject("a", 100);
  PutObject("b", 100);
  CacheOptions opts;
  // Room for exactly one entry (charge = 64 overhead + 1 key + 100 data).
  opts.wave_ledger_bytes = 200;
  CachingStore cache(&inner_, opts);

  cache.BeginWave();
  Buffer out;
  ASSERT_TRUE(cache.Get("a", &out).ok());  // Recorded: 165 <= 200.
  ASSERT_TRUE(cache.Get("b", &out).ok());  // Past the cap: not recorded.
  EXPECT_EQ(cache.WaveLedgerEntries(), 1u);
  cache.Clear();
  ASSERT_TRUE(cache.Get("a", &out).ok());  // Wave hit.
  ASSERT_TRUE(cache.Get("b", &out).ok());  // Physical re-fetch.
  EXPECT_EQ(cache.stats().cache_wave_hits.load(), 1u);
  EXPECT_EQ(inner_.stats().gets.load(), 3u);
  cache.EndWave();
}

}  // namespace
}  // namespace rottnest::objectstore
