#include "objectstore/circuit_breaker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "objectstore/fault_injection.h"

namespace rottnest::objectstore {
namespace {

Buffer Bytes(const std::string& s) { return Buffer(s.begin(), s.end()); }

Status Unavail() { return Status::Unavailable("backend down"); }

class CircuitBreakerTest : public ::testing::Test {
 protected:
  /// Admits and records `n` outcomes with the given status.
  void Feed(CircuitBreaker* b, int n, const Status& s, Micros latency = 0) {
    for (int i = 0; i < n; ++i) {
      bool probe = false;
      ASSERT_TRUE(b->Admit(&probe).ok());
      b->Record(s, latency, probe);
    }
  }

  SimulatedClock clock_;
};

TEST_F(CircuitBreakerTest, StaysClosedBelowMinSamples) {
  BreakerOptions opts;
  opts.min_samples = 16;
  CircuitBreaker breaker(&clock_, opts);
  // 100% failures, but fewer than min_samples: a cold start, not an
  // incident.
  Feed(&breaker, 15, Unavail());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.breaker_stats().opened.load(), 0u);
}

TEST_F(CircuitBreakerTest, TripsAtFailureThreshold) {
  BreakerOptions opts;
  opts.min_samples = 16;
  opts.failure_threshold = 0.5;
  CircuitBreaker breaker(&clock_, opts);
  Feed(&breaker, 8, Status::OK());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  Feed(&breaker, 8, Unavail());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.breaker_stats().opened.load(), 1u);
}

TEST_F(CircuitBreakerTest, OpenFailsFastWithTypedStatus) {
  BreakerOptions opts;
  opts.min_samples = 4;
  CircuitBreaker breaker(&clock_, opts);
  Feed(&breaker, 4, Unavail());
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  bool probe = false;
  Status s = breaker.Admit(&probe);
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_TRUE(IsCircuitOpen(s));
  // A genuine store error is NOT the breaker verdict.
  EXPECT_FALSE(IsCircuitOpen(Unavail()));
  EXPECT_EQ(breaker.breaker_stats().fast_failures.load(), 1u);
}

TEST_F(CircuitBreakerTest, CooldownAdmitsSingleProbe) {
  BreakerOptions opts;
  opts.min_samples = 4;
  opts.cooldown_micros = 1'000'000;
  CircuitBreaker breaker(&clock_, opts);
  Feed(&breaker, 4, Unavail());
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  clock_.Advance(999'999);
  bool probe = false;
  EXPECT_TRUE(IsCircuitOpen(breaker.Admit(&probe)));  // Not yet.

  clock_.Advance(1);
  ASSERT_TRUE(breaker.Admit(&probe).ok());
  EXPECT_TRUE(probe);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // Only ONE probe flies at a time; a second concurrent request fast-fails.
  bool probe2 = false;
  EXPECT_TRUE(IsCircuitOpen(breaker.Admit(&probe2)));
  breaker.Record(Status::OK(), 0, /*was_probe=*/true);
  EXPECT_EQ(breaker.breaker_stats().probes.load(), 1u);
}

TEST_F(CircuitBreakerTest, ProbeFailureReopens) {
  BreakerOptions opts;
  opts.min_samples = 4;
  opts.cooldown_micros = 1'000'000;
  CircuitBreaker breaker(&clock_, opts);
  Feed(&breaker, 4, Unavail());
  clock_.Advance(1'000'000);
  bool probe = false;
  ASSERT_TRUE(breaker.Admit(&probe).ok());
  ASSERT_TRUE(probe);
  breaker.Record(Unavail(), 0, /*was_probe=*/true);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.breaker_stats().opened.load(), 2u);
  // The cooldown restarted: still refusing until another full cooldown.
  clock_.Advance(999'999);
  EXPECT_TRUE(IsCircuitOpen(breaker.Admit(&probe)));
}

TEST_F(CircuitBreakerTest, ConsecutiveProbeSuccessesReclose) {
  BreakerOptions opts;
  opts.min_samples = 4;
  opts.cooldown_micros = 1'000'000;
  opts.half_open_probes = 3;
  CircuitBreaker breaker(&clock_, opts);
  Feed(&breaker, 4, Unavail());
  clock_.Advance(1'000'000);
  for (int i = 0; i < 3; ++i) {
    bool probe = false;
    ASSERT_TRUE(breaker.Admit(&probe).ok());
    ASSERT_TRUE(probe);
    breaker.Record(Status::OK(), 0, /*was_probe=*/true);
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.breaker_stats().reclosed.load(), 1u);
  // The ring was reset on reclose: the old failures cannot instantly
  // re-trip the breaker.
  Feed(&breaker, 3, Status::OK());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST_F(CircuitBreakerTest, DeadlineExceededIsNotAFailure) {
  BreakerOptions opts;
  opts.min_samples = 4;
  CircuitBreaker breaker(&clock_, opts);
  // Callers' budgets expiring says nothing about the store's health.
  Feed(&breaker, 32, Status::DeadlineExceeded("caller budget"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.breaker_stats().failures_observed.load(), 0u);
}

TEST_F(CircuitBreakerTest, SlowSuccessesCountWhenLatencyThresholdSet) {
  BreakerOptions opts;
  opts.min_samples = 4;
  opts.latency_threshold_micros = 10'000;
  CircuitBreaker breaker(&clock_, opts);
  // Successful but slower than the threshold: a brown-out, which the
  // failure-rate machinery alone would never see.
  Feed(&breaker, 4, Status::OK(), /*latency=*/50'000);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST_F(CircuitBreakerTest, DisabledIsTransparent) {
  BreakerOptions opts;
  opts.enabled = false;
  opts.min_samples = 1;
  CircuitBreaker breaker(&clock_, opts);
  Feed(&breaker, 64, Unavail());
  bool probe = false;
  EXPECT_TRUE(breaker.Admit(&probe).ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST_F(CircuitBreakerTest, MetricsMirrorTransitions) {
  BreakerOptions opts;
  opts.min_samples = 4;
  CircuitBreaker breaker(&clock_, opts);
  obs::MetricsRegistry registry;
  breaker.AttachMetrics(&registry, "meta");
  Feed(&breaker, 4, Unavail());
  EXPECT_EQ(registry.GetCounter("breaker.meta.opened")->value(), 1u);
  EXPECT_EQ(registry.GetGauge("breaker.meta.state")->value(), 2);  // Open.
  bool probe = false;
  (void)breaker.Admit(&probe);
  EXPECT_EQ(registry.GetCounter("breaker.meta.fast_failures")->value(), 1u);
}

// End-to-end: BreakerStore over a FaultInjectingStore. Sustained injected
// faults trip the breaker; subsequent ops fast-fail WITHOUT reaching the
// inner store; recovery (faults stop + cooldown) re-closes it.
TEST_F(CircuitBreakerTest, BreakerStoreEndToEnd) {
  InMemoryObjectStore mem(&clock_);
  FaultOptions fopts;
  fopts.seed = 7;
  FaultInjectingStore faulty(&mem, fopts);
  BreakerOptions bopts;
  bopts.min_samples = 8;
  bopts.failure_threshold = 0.5;
  bopts.cooldown_micros = 1'000'000;
  bopts.half_open_probes = 1;
  BreakerStore store(&faulty, bopts, "e2e");
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());

  // Make every op fail and hammer until the breaker opens.
  faulty.SetFailurePoint([](const std::string&, const std::string&) {
    return Status::Unavailable("injected outage");
  });
  Buffer out;
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(store.Get("k", &out).ok());
  ASSERT_EQ(store.breaker().state(), CircuitBreaker::State::kOpen);

  // While open, the inner store is never touched.
  uint64_t inner_ops_before = faulty.op_count();
  Status s = store.Get("k", &out);
  EXPECT_TRUE(IsCircuitOpen(s));
  EXPECT_EQ(faulty.op_count(), inner_ops_before);

  // Recovery: faults stop, cooldown passes, one good probe re-closes.
  faulty.SetFailurePoint(nullptr);
  clock_.Advance(1'000'000);
  ASSERT_TRUE(store.Get("k", &out).ok());
  EXPECT_EQ(out, Bytes("v"));
  EXPECT_EQ(store.breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(store.breaker().breaker_stats().reclosed.load(), 1u);
}

}  // namespace
}  // namespace rottnest::objectstore
