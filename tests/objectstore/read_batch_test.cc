// ReadBatch contract tests, notably the error contract: a failed request
// must leave a ZERO-LENGTH buffer at its position — never stale bytes from
// a recycled results vector — so degraded-read callers can tell failed
// slots from data positionally.
#include "objectstore/read_batch.h"

#include <gtest/gtest.h>

#include <string>

#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"

namespace rottnest::objectstore {
namespace {

class ReadBatchContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string a(100, 'a'), b(100, 'b'), c(100, 'c');
    ASSERT_TRUE(inner_.Put("a", Slice(a)).ok());
    ASSERT_TRUE(inner_.Put("b", Slice(b)).ok());
    ASSERT_TRUE(inner_.Put("c", Slice(c)).ok());
  }

  SimulatedClock clock_;
  InMemoryObjectStore inner_{&clock_};
};

TEST_F(ReadBatchContractTest, ResultsAlignPositionally) {
  std::vector<RangeRequest> reqs = {
      {"a", 0, 10}, {"b", 50, 10}, {"c", 0, 0} /* whole object */};
  std::vector<Buffer> results;
  ASSERT_TRUE(ReadBatch(&inner_, reqs, nullptr, nullptr, &results).ok());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], Buffer(10, 'a'));
  EXPECT_EQ(results[1], Buffer(10, 'b'));
  EXPECT_EQ(results[2], Buffer(100, 'c'));
}

TEST_F(ReadBatchContractTest, FailedRequestLeavesZeroLengthBuffer) {
  FaultInjectingStore faulty(&inner_);
  faulty.SetFailurePoint([](const std::string&, const std::string& key) {
    return key == "b" ? Status::Unavailable("injected") : Status::OK();
  });

  std::vector<RangeRequest> reqs = {{"a", 0, 10}, {"b", 0, 10}, {"c", 0, 10}};
  // Recycle a results vector with stale garbage in every slot: the failed
  // slot must come back zero-length, not keep its previous occupant.
  std::vector<Buffer> results(3, Buffer(99, 'Z'));
  Status s = ReadBatch(&faulty, reqs, nullptr, nullptr, &results);
  EXPECT_TRUE(s.IsUnavailable());

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], Buffer(10, 'a'));  // Others still attempted.
  EXPECT_TRUE(results[1].empty());         // The contract under test.
  EXPECT_EQ(results[2], Buffer(10, 'c'));
}

TEST_F(ReadBatchContractTest, FailedSlotIsZeroLengthUnderParallelExecution) {
  FaultInjectingStore faulty(&inner_);
  faulty.SetFailurePoint([](const std::string&, const std::string& key) {
    return key == "a" ? Status::Unavailable("injected") : Status::OK();
  });
  ThreadPool pool(4);
  std::vector<RangeRequest> reqs = {{"a", 0, 10}, {"b", 0, 10}, {"c", 0, 10}};
  std::vector<Buffer> results(3, Buffer(99, 'Z'));
  EXPECT_TRUE(
      ReadBatch(&faulty, reqs, &pool, nullptr, &results).IsUnavailable());
  EXPECT_TRUE(results[0].empty());
  EXPECT_EQ(results[1], Buffer(10, 'b'));
  EXPECT_EQ(results[2], Buffer(10, 'c'));
}

}  // namespace
}  // namespace rottnest::objectstore
