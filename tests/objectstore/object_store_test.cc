#include "objectstore/object_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "objectstore/local_disk_store.h"

namespace rottnest::objectstore {
namespace {

Buffer Bytes(const std::string& s) { return Buffer(s.begin(), s.end()); }

class InMemoryStoreTest : public ::testing::Test {
 protected:
  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
};

TEST_F(InMemoryStoreTest, PutGetRoundTrip) {
  Buffer data = Bytes("hello object storage");
  ASSERT_TRUE(store_.Put("bucket/key", Slice(data)).ok());
  Buffer out;
  ASSERT_TRUE(store_.Get("bucket/key", &out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(InMemoryStoreTest, GetMissingIsNotFound) {
  Buffer out;
  EXPECT_TRUE(store_.Get("nope", &out).IsNotFound());
}

TEST_F(InMemoryStoreTest, ReadAfterWriteConsistency) {
  // A Get immediately after Put must observe the object — the protocol's
  // foundational storage property.
  for (int i = 0; i < 100; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(store_.Put(key, Slice(Bytes(key))).ok());
    Buffer out;
    ASSERT_TRUE(store_.Get(key, &out).ok());
    EXPECT_EQ(out, Bytes(key));
  }
}

TEST_F(InMemoryStoreTest, PutOverwrites) {
  ASSERT_TRUE(store_.Put("k", Slice(Bytes("v1"))).ok());
  ASSERT_TRUE(store_.Put("k", Slice(Bytes("v2"))).ok());
  Buffer out;
  ASSERT_TRUE(store_.Get("k", &out).ok());
  EXPECT_EQ(out, Bytes("v2"));
}

TEST_F(InMemoryStoreTest, PutIfAbsentConflicts) {
  ASSERT_TRUE(store_.PutIfAbsent("log/0", Slice(Bytes("commit-a"))).ok());
  Status s = store_.PutIfAbsent("log/0", Slice(Bytes("commit-b")));
  EXPECT_TRUE(s.IsAlreadyExists());
  Buffer out;
  ASSERT_TRUE(store_.Get("log/0", &out).ok());
  EXPECT_EQ(out, Bytes("commit-a"));  // Loser must not clobber the winner.
}

TEST_F(InMemoryStoreTest, PutIfAbsentIsAtomicUnderRaces) {
  // N threads race to commit the same log version; exactly one must win.
  constexpr int kThreads = 16;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Buffer payload = Bytes("writer-" + std::to_string(i));
      if (store_.PutIfAbsent("log/42", Slice(payload)).ok()) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST_F(InMemoryStoreTest, GetRange) {
  ASSERT_TRUE(store_.Put("k", Slice(Bytes("0123456789"))).ok());
  Buffer out;
  ASSERT_TRUE(store_.GetRange("k", 2, 3, &out).ok());
  EXPECT_EQ(out, Bytes("234"));
  // Range past end truncates like HTTP.
  ASSERT_TRUE(store_.GetRange("k", 8, 100, &out).ok());
  EXPECT_EQ(out, Bytes("89"));
  // Offset beyond the object is an error.
  EXPECT_TRUE(store_.GetRange("k", 11, 1, &out).IsInvalidArgument());
}

TEST_F(InMemoryStoreTest, GetRangeAtEndIsEmpty) {
  // offset == size is a zero-length suffix read, not an error — readers
  // computing "tail of length L" with L == 0 must not have to special-case.
  ASSERT_TRUE(store_.Put("k", Slice(Bytes("0123456789"))).ok());
  Buffer out = Bytes("stale");
  ASSERT_TRUE(store_.GetRange("k", 10, 5, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(store_.GetRange("k", 10, 0, &out).ok());
  EXPECT_TRUE(out.empty());
  // An empty object admits only the offset-0 empty read.
  ASSERT_TRUE(store_.Put("empty", Slice()).ok());
  ASSERT_TRUE(store_.GetRange("empty", 0, 4, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(store_.GetRange("empty", 1, 1, &out).IsInvalidArgument());
}

TEST_F(InMemoryStoreTest, HeadReportsSizeAndTimestamp) {
  clock_.SetMicros(5000);
  ASSERT_TRUE(store_.Put("k", Slice(Bytes("abcd"))).ok());
  ObjectMeta meta;
  ASSERT_TRUE(store_.Head("k", &meta).ok());
  EXPECT_EQ(meta.size, 4u);
  EXPECT_EQ(meta.created_micros, 5000);
  EXPECT_TRUE(store_.Head("missing", &meta).IsNotFound());
}

TEST_F(InMemoryStoreTest, TimestampsFollowGlobalClock) {
  clock_.SetMicros(100);
  ASSERT_TRUE(store_.Put("a", Slice(Bytes("x"))).ok());
  clock_.Advance(900);
  ASSERT_TRUE(store_.Put("b", Slice(Bytes("x"))).ok());
  ObjectMeta ma, mb;
  ASSERT_TRUE(store_.Head("a", &ma).ok());
  ASSERT_TRUE(store_.Head("b", &mb).ok());
  EXPECT_EQ(ma.created_micros, 100);
  EXPECT_EQ(mb.created_micros, 1000);
}

TEST_F(InMemoryStoreTest, ListByPrefixSorted) {
  for (const char* k : {"idx/b", "idx/a", "data/x", "idx/c", "other"}) {
    ASSERT_TRUE(store_.Put(k, Slice(Bytes("v"))).ok());
  }
  std::vector<ObjectMeta> listing;
  ASSERT_TRUE(store_.List("idx/", &listing).ok());
  ASSERT_EQ(listing.size(), 3u);
  EXPECT_EQ(listing[0].key, "idx/a");
  EXPECT_EQ(listing[1].key, "idx/b");
  EXPECT_EQ(listing[2].key, "idx/c");
}

TEST_F(InMemoryStoreTest, ListEmptyPrefixListsAll) {
  ASSERT_TRUE(store_.Put("a", Slice(Bytes("v"))).ok());
  ASSERT_TRUE(store_.Put("b", Slice(Bytes("v"))).ok());
  std::vector<ObjectMeta> listing;
  ASSERT_TRUE(store_.List("", &listing).ok());
  EXPECT_EQ(listing.size(), 2u);
}

TEST_F(InMemoryStoreTest, DeleteIsIdempotent) {
  ASSERT_TRUE(store_.Put("k", Slice(Bytes("v"))).ok());
  ASSERT_TRUE(store_.Delete("k").ok());
  Buffer out;
  EXPECT_TRUE(store_.Get("k", &out).IsNotFound());
  EXPECT_TRUE(store_.Delete("k").ok());  // Second delete still OK.
}

TEST_F(InMemoryStoreTest, StatsCountRequests) {
  Buffer out;
  ASSERT_TRUE(store_.Put("k", Slice(Bytes("0123456789"))).ok());
  ASSERT_TRUE(store_.Get("k", &out).ok());
  ASSERT_TRUE(store_.GetRange("k", 0, 4, &out).ok());
  std::vector<ObjectMeta> listing;
  ASSERT_TRUE(store_.List("", &listing).ok());
  ASSERT_TRUE(store_.Delete("k").ok());
  EXPECT_EQ(store_.stats().puts.load(), 1u);
  EXPECT_EQ(store_.stats().gets.load(), 2u);
  EXPECT_EQ(store_.stats().lists.load(), 1u);
  EXPECT_EQ(store_.stats().deletes.load(), 1u);
  EXPECT_EQ(store_.stats().bytes_written.load(), 10u);
  EXPECT_EQ(store_.stats().bytes_read.load(), 14u);
}

TEST_F(InMemoryStoreTest, FailureInjection) {
  store_.SetFailurePoint([](const std::string& op, const std::string& key) {
    if (op == "put" && key == "poison") {
      return Status::IOError("injected");
    }
    return Status::OK();
  });
  EXPECT_TRUE(store_.Put("poison", Slice(Bytes("v"))).IsIOError());
  EXPECT_TRUE(store_.Put("fine", Slice(Bytes("v"))).ok());
  store_.SetFailurePoint(nullptr);
  EXPECT_TRUE(store_.Put("poison", Slice(Bytes("v"))).ok());
}

TEST_F(InMemoryStoreTest, TotalBytesAndObjectCount) {
  ASSERT_TRUE(store_.Put("a", Slice(Bytes("12345"))).ok());
  ASSERT_TRUE(store_.Put("b", Slice(Bytes("123"))).ok());
  EXPECT_EQ(store_.TotalBytes(), 8u);
  EXPECT_EQ(store_.ObjectCount(), 2u);
}

class LocalDiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("rottnest_store_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<LocalDiskObjectStore>(root_.string(), &clock_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::filesystem::path root_;
  SystemClock clock_;
  std::unique_ptr<LocalDiskObjectStore> store_;
};

TEST_F(LocalDiskStoreTest, PutGetRoundTrip) {
  Buffer data = Bytes("persisted payload");
  ASSERT_TRUE(store_->Put("tables/t1/part-0.parquet", Slice(data)).ok());
  Buffer out;
  ASSERT_TRUE(store_->Get("tables/t1/part-0.parquet", &out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(LocalDiskStoreTest, GetRangeAndHead) {
  ASSERT_TRUE(store_->Put("k", Slice(Bytes("0123456789"))).ok());
  Buffer out;
  ASSERT_TRUE(store_->GetRange("k", 3, 4, &out).ok());
  EXPECT_EQ(out, Bytes("3456"));
  ObjectMeta meta;
  ASSERT_TRUE(store_->Head("k", &meta).ok());
  EXPECT_EQ(meta.size, 10u);
}

TEST_F(LocalDiskStoreTest, GetRangeAtEndIsEmpty) {
  ASSERT_TRUE(store_->Put("k", Slice(Bytes("0123456789"))).ok());
  Buffer out = Bytes("stale");
  ASSERT_TRUE(store_->GetRange("k", 10, 5, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(store_->GetRange("k", 11, 1, &out).IsInvalidArgument());
}

TEST_F(LocalDiskStoreTest, PutIfAbsent) {
  ASSERT_TRUE(store_->PutIfAbsent("log/0", Slice(Bytes("a"))).ok());
  EXPECT_TRUE(store_->PutIfAbsent("log/0", Slice(Bytes("b"))).IsAlreadyExists());
}

TEST_F(LocalDiskStoreTest, ListNestedKeys) {
  ASSERT_TRUE(store_->Put("t/log/0", Slice(Bytes("v"))).ok());
  ASSERT_TRUE(store_->Put("t/log/1", Slice(Bytes("v"))).ok());
  ASSERT_TRUE(store_->Put("t/data/a", Slice(Bytes("v"))).ok());
  std::vector<ObjectMeta> listing;
  ASSERT_TRUE(store_->List("t/log/", &listing).ok());
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0].key, "t/log/0");
  EXPECT_EQ(listing[1].key, "t/log/1");
}

TEST_F(LocalDiskStoreTest, DeleteAndMissing) {
  ASSERT_TRUE(store_->Put("k", Slice(Bytes("v"))).ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  Buffer out;
  EXPECT_TRUE(store_->Get("k", &out).IsNotFound());
}

}  // namespace
}  // namespace rottnest::objectstore
