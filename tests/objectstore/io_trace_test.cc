#include "objectstore/io_trace.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "objectstore/hedging_store.h"
#include "objectstore/read_batch.h"

namespace rottnest::objectstore {
namespace {

Buffer Bytes(const std::string& s) { return Buffer(s.begin(), s.end()); }

TEST(S3ModelTest, LatencyFlatUntilOneMegabyte) {
  // Reproduces the Fig 10a observation: read latency is stable in request
  // size until ~1MB, then grows linearly.
  S3Model model;
  double lat_1kb = model.RoundLatencyMs(1 << 10, 1);
  double lat_256kb = model.RoundLatencyMs(256 << 10, 1);
  double lat_1mb = model.RoundLatencyMs(1 << 20, 1);
  double lat_64mb = model.RoundLatencyMs(64 << 20, 1);
  // Small reads are dominated by TTFB: within 15% of each other.
  EXPECT_LT(lat_256kb / lat_1kb, 1.15);
  // 64MB is dominated by transfer: ~64x the 1MB transfer time.
  EXPECT_GT(lat_64mb / lat_1mb, 10.0);
}

TEST(S3ModelTest, ConcurrencyOnlyMattersWhenNicSaturates) {
  S3Model model;
  // 512 concurrent 256KB reads: NIC at 12.5 GB/s shared by 512 streams is
  // ~24 MB/s/stream, still transfer-cheap at 256KB.
  double lat_1 = model.RoundLatencyMs(256 << 10, 1);
  double lat_512 = model.RoundLatencyMs(256 << 10, 512);
  EXPECT_LT(lat_512 / lat_1, 1.5);
  // At 16MB per request, 512-way concurrency saturates the NIC.
  double big_1 = model.RoundLatencyMs(16 << 20, 1);
  double big_512 = model.RoundLatencyMs(16 << 20, 512);
  EXPECT_GT(big_512 / big_1, 3.0);
}

TEST(IoTraceTest, DepthCountsDependentRounds) {
  IoTrace trace;
  trace.BeginRound();
  trace.RecordGet(1000);
  trace.RecordGet(2000);  // Same round: concurrent.
  trace.BeginRound();
  trace.RecordGet(500);  // Dependent second round.
  EXPECT_EQ(trace.depth(), 2u);
  EXPECT_EQ(trace.total_gets(), 3u);
  EXPECT_EQ(trace.total_bytes(), 3500u);
}

TEST(IoTraceTest, EmptyRoundsDoNotCountTowardDepth) {
  IoTrace trace;
  trace.BeginRound();
  trace.BeginRound();
  trace.RecordGet(100);
  EXPECT_EQ(trace.depth(), 1u);
}

TEST(IoTraceTest, ProjectedLatencySumsRounds) {
  S3Model model;
  model.ttfb_ms = 30.0;
  IoTrace trace;
  trace.BeginRound();
  trace.RecordGet(100);
  trace.BeginRound();
  trace.RecordGet(100);
  trace.BeginRound();
  trace.RecordGet(100);
  double ms = trace.ProjectedLatencyMs(model);
  // Three dependent rounds of tiny reads: ~3 * ttfb.
  EXPECT_NEAR(ms, 90.0, 1.0);
}

TEST(IoTraceTest, ParallelReadsInOneRoundCostOneTtfb) {
  S3Model model;
  IoTrace wide, deep;
  wide.BeginRound();
  for (int i = 0; i < 10; ++i) wide.RecordGet(1000);
  for (int i = 0; i < 10; ++i) {
    deep.BeginRound();
    deep.RecordGet(1000);
  }
  // The width-over-depth principle of §V-B.
  EXPECT_LT(wide.ProjectedLatencyMs(model) * 5,
            deep.ProjectedLatencyMs(model));
}

TEST(IoTraceTest, ComputeTimeAddsToLatency) {
  S3Model model;
  IoTrace trace;
  trace.AddComputeMicros(50'000);
  EXPECT_NEAR(trace.ProjectedLatencyMs(model), 50.0, 0.01);
}

TEST(IoTraceTest, ListRoundsUseListLatency) {
  S3Model model;
  model.list_ms = 60.0;
  IoTrace trace;
  trace.RecordList();
  EXPECT_NEAR(trace.ProjectedLatencyMs(model), 60.0, 0.01);
  EXPECT_EQ(trace.total_lists(), 1u);
}

TEST(IoTraceTest, RequestCost) {
  S3Model model;
  IoTrace trace;
  trace.BeginRound();
  for (int i = 0; i < 1000; ++i) trace.RecordGet(10);
  double usd = trace.RequestCostUsd(model);
  EXPECT_NEAR(usd, 1000 * model.get_cost_usd, 1e-9);
}

TEST(IoTraceTest, ResetClears) {
  IoTrace trace;
  trace.BeginRound();
  trace.RecordGet(100);
  trace.AddComputeMicros(1000);
  trace.Reset();
  EXPECT_EQ(trace.depth(), 0u);
  EXPECT_EQ(trace.total_gets(), 0u);
  EXPECT_EQ(trace.compute_micros(), 0);
}

TEST(TracedStoreTest, RecordsGetsAndLists) {
  SimulatedClock clock;
  InMemoryObjectStore inner(&clock);
  ASSERT_TRUE(inner.Put("k", Slice(Bytes("0123456789"))).ok());
  IoTrace trace;
  TracedObjectStore traced(&inner, &trace);
  Buffer out;
  ASSERT_TRUE(traced.Get("k", &out).ok());
  ASSERT_TRUE(traced.GetRange("k", 0, 4, &out).ok());
  std::vector<ObjectMeta> listing;
  ASSERT_TRUE(traced.List("", &listing).ok());
  EXPECT_EQ(trace.total_gets(), 2u);
  EXPECT_EQ(trace.total_bytes(), 14u);
  EXPECT_EQ(trace.total_lists(), 1u);
}

TEST(ReadBatchTest, ReadsAllRequestsAsOneRound) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        store.Put("obj" + std::to_string(i), Slice(Bytes("payload" + std::to_string(i))))
            .ok());
  }
  ThreadPool pool(4);
  IoTrace trace;
  std::vector<RangeRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back({"obj" + std::to_string(i), 0, 0});
  }
  std::vector<Buffer> results;
  ASSERT_TRUE(ReadBatch(&store, requests, &pool, &trace, &results).ok());
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results[i], Bytes("payload" + std::to_string(i)));
  }
  EXPECT_EQ(trace.depth(), 1u);  // One round despite 8 requests.
  EXPECT_EQ(trace.total_gets(), 8u);
}

TEST(ReadBatchTest, RangeRequests) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("k", Slice(Bytes("0123456789"))).ok());
  std::vector<RangeRequest> requests = {{"k", 2, 3}, {"k", 5, 2}};
  std::vector<Buffer> results;
  ASSERT_TRUE(ReadBatch(&store, requests, nullptr, nullptr, &results).ok());
  EXPECT_EQ(results[0], Bytes("234"));
  EXPECT_EQ(results[1], Bytes("56"));
}

TEST(ReadBatchTest, MissingKeyReportsErrorButReadsRest) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ASSERT_TRUE(store.Put("present", Slice(Bytes("v"))).ok());
  ThreadPool pool(2);
  std::vector<RangeRequest> requests = {{"present", 0, 0}, {"absent", 0, 0}};
  std::vector<Buffer> results;
  Status s = ReadBatch(&store, requests, &pool, nullptr, &results);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(results[0], Bytes("v"));
}

TEST(ReadBatchTest, EmptyBatchIsNoop) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  IoTrace trace;
  std::vector<Buffer> results;
  ASSERT_TRUE(ReadBatch(&store, {}, nullptr, &trace, &results).ok());
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(trace.depth(), 0u);
}

TEST(IoTraceMergeTest, MergingAnEmptyWaveIsANoop) {
  IoTrace trace;
  trace.RecordGet(100);
  trace.MergeParallel({});
  // No children: depth, totals and compute stay exactly as they were.
  EXPECT_EQ(trace.depth(), 1u);
  EXPECT_EQ(trace.total_gets(), 1u);
  EXPECT_EQ(trace.total_bytes(), 100u);
  EXPECT_EQ(trace.compute_micros(), 0);
  // Null children are skipped, not dereferenced.
  trace.MergeParallel({nullptr, nullptr});
  EXPECT_EQ(trace.total_gets(), 1u);
}

TEST(IoTraceMergeTest, ChildIsFlaggedAfterMergeAndResetClears) {
  IoTrace parent, child;
  child.RecordGet(64);
  EXPECT_FALSE(child.merged_into_parent());
  parent.MergeParallel({&child});
  // The merged-once contract: a child folded into a parent is flagged so a
  // second merge (which would double-count its requests in the parent's
  // totals) trips the debug assert.
  EXPECT_TRUE(child.merged_into_parent());
  EXPECT_EQ(parent.total_gets(), 1u);
  EXPECT_EQ(parent.total_bytes(), 64u);
  child.Reset();
  EXPECT_FALSE(child.merged_into_parent());
  // After Reset the child is a fresh trace and may be merged again.
  child.RecordGet(32);
  parent.MergeParallel({&child});
  EXPECT_EQ(parent.total_gets(), 2u);
  EXPECT_EQ(parent.total_bytes(), 96u);
}

TEST(IoTraceMergeTest, HedgedReadsStayLogicalInTheTrace) {
  // The IoTrace is a LOGICAL access-pattern record: a hedged GET is one
  // traced request no matter how many physical attempts flew. The hedge
  // loser finishes after the caller already recorded (and possibly merged)
  // its trace — it must have no path back into any IoTrace, or the
  // merged-once contract above would be violated from another thread.
  SimulatedClock clock;
  InMemoryObjectStore inner(&clock);
  HedgeOptions hopts;
  hopts.initial_delay_micros = 0;  // Hedge EVERY read immediately.
  hopts.threads = 2;
  HedgingStore store(&inner, hopts);
  ASSERT_TRUE(store.Put("k", Slice(Bytes("v"))).ok());

  IoTrace parent, child;
  for (int i = 0; i < 6; ++i) {
    Buffer out;
    ASSERT_TRUE(store.Get("k", &out).ok());
    child.RecordGet(out.size());  // One LOGICAL record per caller-side Get.
  }
  parent.MergeParallel({&child});
  EXPECT_TRUE(child.merged_into_parent());
  store.Quiesce();  // All losers drained; none touched either trace.
  EXPECT_EQ(parent.total_gets(), 6u);
  // The physical amplification is visible ONLY in the hedge counters:
  // physical gets == traced (logical) gets + hedges issued.
  EXPECT_EQ(inner.stats().gets.load(),
            parent.total_gets() + store.hedge_stats().hedges_issued.load());
}

TEST(ThreadPoolTest, ParallelForRunsAllIterations) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace rottnest::objectstore
