#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "baseline/dedicated_service.h"
#include "workload/generators.h"

namespace rottnest::baseline {
namespace {

using objectstore::InMemoryObjectStore;
using workload::DatasetSpec;
using workload::TextGenerator;
using workload::UuidGenerator;
using workload::VectorGenerator;

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.total_rows = 2000;
    spec_.num_files = 4;
    spec_.doc_chars = 120;
    spec_.vector_dim = 16;
    format::WriterOptions w;
    w.target_page_bytes = 4 << 10;
    w.target_row_group_bytes = 64 << 10;
    table_ = workload::BuildDataset(&store_, "lake/b", spec_, w).MoveValue();
  }

  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
  DatasetSpec spec_;
  std::unique_ptr<lake::Table> table_;
};

TEST_F(BaselineTest, BruteForceUuidFindsExactRow) {
  UuidGenerator ids(spec_.seed, spec_.uuid_bytes);
  BruteForceEngine engine(&store_, table_.get(), BruteForceOptions{});
  std::string target = ids.IdFor(777);
  auto result = engine.SearchUuid("uuid", Slice(target), 10);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().matches[0].value, target);
  EXPECT_GT(result.value().bytes_scanned, 0u);
  EXPECT_GT(result.value().projected_latency_s, 0.0);
}

TEST_F(BaselineTest, BruteForceSubstringAgreesWithDedicated) {
  TextGenerator text(spec_.seed);
  std::string pattern = text.SamplePattern(1);

  BruteForceEngine engine(&store_, table_.get(), BruteForceOptions{});
  auto bf = engine.SearchSubstring("body", pattern, 1000000);
  ASSERT_TRUE(bf.ok());

  auto svc = DedicatedService::Ingest(&store_, table_.get(), "uuid", "body",
                                      "vec", spec_.vector_dim)
                 .MoveValue();
  auto ded = svc->SearchSubstring(pattern, 1000000);
  EXPECT_EQ(bf.value().matches.size(), ded.size());
}

TEST_F(BaselineTest, BruteForceVectorIsExactKnn) {
  VectorGenerator vecs(spec_.seed, spec_.vector_dim);
  BruteForceEngine engine(&store_, table_.get(), BruteForceOptions{});
  std::vector<float> q = vecs.VectorFor(99);  // Exact stored vector.
  auto result = engine.SearchVector("vec", q.data(), spec_.vector_dim, 5);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().matches.size(), 5u);
  EXPECT_NEAR(result.value().matches[0].distance, 0.0, 1e-3);
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_LE(result.value().matches[i - 1].distance,
              result.value().matches[i].distance);
  }
}

TEST_F(BaselineTest, LatencyProjectionImprovesThenSaturates) {
  // Fig 8a shape: near-linear speedup at small W, flattening once W
  // approaches the number of chunks.
  UuidGenerator ids(spec_.seed, spec_.uuid_bytes);
  std::string target = ids.IdFor(3);

  auto latency_at = [&](size_t workers) {
    BruteForceOptions options;
    options.workers = workers;
    // Overheads and per-worker parallelism scaled down to match this
    // test's miniature dataset (defaults are calibrated for bench-scale
    // workloads where chunks far outnumber streams).
    options.coordination_overhead_s = 0.02;
    options.per_worker_overhead_s = 0.0005;
    options.streams_per_worker = 1;
    BruteForceEngine engine(&store_, table_.get(), options);
    auto r = engine.SearchUuid("uuid", Slice(target), 1);
    EXPECT_TRUE(r.ok());
    return r.value().projected_latency_s;
  };
  double l1 = latency_at(1);
  double l4 = latency_at(4);
  double l64 = latency_at(64);
  double l128 = latency_at(128);
  EXPECT_GT(l1 / l4, 1.5);           // Early scaling is strong.
  EXPECT_LT(l64 / l128, 1.35);       // Late scaling has collapsed.
  EXPECT_LT(l64, l4);
}

TEST_F(BaselineTest, DedicatedServiceUuidLookup) {
  auto svc = DedicatedService::Ingest(&store_, table_.get(), "uuid", "body",
                                      "vec", spec_.vector_dim)
                 .MoveValue();
  EXPECT_EQ(svc->num_rows(), 2000u);
  EXPECT_GT(svc->memory_bytes(), 0u);
  UuidGenerator ids(spec_.seed, spec_.uuid_bytes);
  auto matches = svc->SearchUuid(Slice(ids.IdFor(1234)), 5);
  ASSERT_EQ(matches.size(), 1u);
}

TEST_F(BaselineTest, DedicatedServiceRespectsDeletionVectors) {
  UuidGenerator ids(spec_.seed, spec_.uuid_bytes);
  std::string victim = ids.IdFor(50);
  ASSERT_TRUE(table_
                  ->DeleteWhere("uuid",
                                [&](const format::ColumnVector& col,
                                    size_t r) {
                                  return col.fixed().at(r) == Slice(victim);
                                })
                  .ok());
  auto svc = DedicatedService::Ingest(&store_, table_.get(), "uuid", "body",
                                      "vec", spec_.vector_dim)
                 .MoveValue();
  EXPECT_TRUE(svc->SearchUuid(Slice(victim), 5).empty());
  EXPECT_EQ(svc->num_rows(), 1999u);
}

TEST_F(BaselineTest, DedicatedVectorSearchExact) {
  VectorGenerator vecs(spec_.seed, spec_.vector_dim);
  auto svc = DedicatedService::Ingest(&store_, table_.get(), "uuid", "body",
                                      "vec", spec_.vector_dim)
                 .MoveValue();
  std::vector<float> q = vecs.VectorFor(123);
  auto matches = svc->SearchVector(q.data(), spec_.vector_dim, 3);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_NEAR(matches[0].distance, 0.0, 1e-3);
}

TEST(WorkloadTest, GeneratorsAreDeterministic) {
  TextGenerator a(7), b(7);
  EXPECT_EQ(a.Document(200), b.Document(200));
  UuidGenerator u1(9), u2(9);
  EXPECT_EQ(u1.IdFor(5), u2.IdFor(5));
  EXPECT_NE(u1.IdFor(5), u1.IdFor(6));
  VectorGenerator v1(3, 16), v2(3, 16);
  EXPECT_EQ(v1.VectorFor(10), v2.VectorFor(10));
}

TEST(WorkloadTest, UuidBytesConfigurable) {
  UuidGenerator u(1, 128);
  EXPECT_EQ(u.IdFor(0).size(), 128u);
  UuidGenerator u16(1, 16);
  EXPECT_EQ(u16.IdFor(0).size(), 16u);
}

TEST(WorkloadTest, TextPatternsOccurInDocuments) {
  TextGenerator gen(5);
  std::string corpus;
  for (int i = 0; i < 50; ++i) corpus += gen.Document(500);
  TextGenerator sampler(5);
  int found = 0;
  for (int i = 0; i < 10; ++i) {
    if (corpus.find(sampler.SamplePattern(1)) != std::string::npos) ++found;
  }
  EXPECT_GE(found, 7);  // Mid-frequency single words mostly occur.
  EXPECT_EQ(corpus.find(sampler.MissingPattern()), std::string::npos);
}

TEST(WorkloadTest, DatasetBuildsWithRequestedShape) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  DatasetSpec spec;
  spec.total_rows = 503;  // Deliberately not divisible by files.
  spec.num_files = 5;
  spec.doc_chars = 50;
  spec.vector_dim = 8;
  auto table = workload::BuildDataset(&store, "lake/w", spec).MoveValue();
  auto snap = table->GetSnapshot().MoveValue();
  EXPECT_EQ(snap.files.size(), 5u);
  EXPECT_EQ(snap.TotalRows(), 503u);
}

}  // namespace
}  // namespace rottnest::baseline
