#include "tco/tco.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rottnest::tco {
namespace {

// A parameter set shaped like the paper's substring-search workload:
// expensive brute-force queries, always-on copy cluster, cheap Rottnest
// queries with modest index/storage overhead.
CostParams PaperLike() {
  CostParams p;
  p.cpm_i = 250.0;    // 3-node cluster + EBS.
  p.cpm_bf = 7.0;     // ~300GB on S3.
  p.cpq_bf = 0.10;    // 8 big workers for ~45s.
  p.ic_r = 40.0;      // One-time indexing.
  p.cpm_r = 13.0;     // Data + index storage.
  p.cpq_r = 0.0015;   // Single instance, seconds.
  return p;
}

TEST(TcoTest, FormulasMatchDefinition) {
  CostParams p = PaperLike();
  EXPECT_DOUBLE_EQ(TcoCopyData(p, 10, 12345), 2500.0);
  EXPECT_DOUBLE_EQ(TcoBruteForce(p, 10, 100), 70.0 + 10.0);
  EXPECT_DOUBLE_EQ(TcoRottnest(p, 10, 1000), 40.0 + 130.0 + 1.5);
}

TEST(TcoTest, WinnerRegionsAreOrderedByQueryLoad) {
  CostParams p = PaperLike();
  // At a fixed 10 months: few queries -> brute force; moderate ->
  // Rottnest; huge -> copy data. (The Fig 2 / Fig 7 vertical ordering.)
  EXPECT_EQ(Winner(p, 10, 1), Approach::kBruteForce);
  EXPECT_EQ(Winner(p, 10, 1e4), Approach::kRottnest);
  EXPECT_EQ(Winner(p, 10, 1e7), Approach::kCopyData);
}

TEST(TcoTest, BoundariesBracketTheRottnestBand) {
  CostParams p = PaperLike();
  Boundaries b = ComputeBoundaries(p, 10);
  ASSERT_GT(b.bf_to_rottnest, 0);
  ASSERT_LT(b.bf_to_rottnest, b.rottnest_to_copy);
  // Exactly at the boundaries the winner flips.
  EXPECT_EQ(Winner(p, 10, b.bf_to_rottnest * 0.5), Approach::kBruteForce);
  EXPECT_EQ(Winner(p, 10, b.bf_to_rottnest * 2.0), Approach::kRottnest);
  EXPECT_EQ(Winner(p, 10, b.rottnest_to_copy * 0.5), Approach::kRottnest);
  EXPECT_EQ(Winner(p, 10, b.rottnest_to_copy * 2.0), Approach::kCopyData);
}

TEST(TcoTest, BandSpansOrdersOfMagnitude) {
  CostParams p = PaperLike();
  // The paper reports ~4 orders of magnitude at 10 months.
  double orders = RottnestBandOrders(p, 10);
  EXPECT_GT(orders, 2.0);
}

TEST(TcoTest, OnsetIsEarly) {
  CostParams p = PaperLike();
  double onset = RottnestOnsetMonths(p);
  // Substring search: ~2 days in the paper; ours must be well under a
  // month for paper-like parameters.
  EXPECT_LT(onset, 1.0);
  EXPECT_GT(onset, 0.0);
}

TEST(TcoTest, ExpensiveIndexDelaysOnset) {
  CostParams cheap = PaperLike();
  CostParams expensive = PaperLike();
  expensive.ic_r *= 16;
  EXPECT_GT(RottnestOnsetMonths(expensive), RottnestOnsetMonths(cheap));
}

TEST(TcoTest, LowerCpqExtendsBandUpward) {
  // §VII-D1 observation 1: decreasing cpq_r pushes the copy-data boundary
  // up, with no effect on the brute-force boundary direction.
  CostParams base = PaperLike();
  CostParams faster = base;
  faster.cpq_r /= 4;
  Boundaries b0 = ComputeBoundaries(base, 10);
  Boundaries b1 = ComputeBoundaries(faster, 10);
  EXPECT_GT(b1.rottnest_to_copy, b0.rottnest_to_copy);
  EXPECT_LE(b1.bf_to_rottnest, b0.bf_to_rottnest * 1.0001);
}

TEST(TcoTest, SmallerIndexExtendsBandDownward) {
  // §VII-D1 observation 1 (dual): decreasing cpm_r mainly helps against
  // brute force on long horizons.
  CostParams base = PaperLike();
  CostParams smaller = base;
  smaller.cpm_r = base.cpm_bf + (base.cpm_r - base.cpm_bf) / 4;
  Boundaries b0 = ComputeBoundaries(base, 24);
  Boundaries b1 = ComputeBoundaries(smaller, 24);
  EXPECT_LT(b1.bf_to_rottnest, b0.bf_to_rottnest);
}

TEST(TcoTest, IndexLargerThanDataCurvesBoundaryUp) {
  // §VII-B1: when the index is almost as large as the data (substring
  // case), the bf->rottnest boundary grows with months (curves up);
  // with a tiny index (UUID case) it stays nearly flat.
  CostParams heavy = PaperLike();  // cpm_r ~ 2x cpm_bf.
  double heavy_1 = ComputeBoundaries(heavy, 1).bf_to_rottnest;
  double heavy_20 = ComputeBoundaries(heavy, 20).bf_to_rottnest;
  EXPECT_GT(heavy_20 / heavy_1, 2.0);

  CostParams light = PaperLike();
  light.cpm_r = light.cpm_bf * 1.01;
  double light_1 = ComputeBoundaries(light, 1).bf_to_rottnest;
  double light_20 = ComputeBoundaries(light, 20).bf_to_rottnest;
  EXPECT_LT(light_20 / light_1, 1.5);
}

TEST(TcoTest, PhaseDiagramGridConsistentWithWinner) {
  CostParams p = PaperLike();
  PhaseDiagram d = ComputePhaseDiagram(p, 0.1, 100, 24, 1, 1e8, 24);
  ASSERT_EQ(d.months.size(), 24u);
  ASSERT_EQ(d.queries.size(), 24u);
  for (size_t qi = 0; qi < 24; qi += 5) {
    for (size_t mi = 0; mi < 24; mi += 5) {
      EXPECT_EQ(d.At(qi, mi), Winner(p, d.months[mi], d.queries[qi]));
    }
  }
  // All three regions appear.
  bool has[3] = {false, false, false};
  for (Approach a : d.winner) has[static_cast<int>(a)] = true;
  EXPECT_TRUE(has[0] && has[1] && has[2]);
}

TEST(TcoTest, RenderAndCsvProduceOutput) {
  CostParams p = PaperLike();
  PhaseDiagram d = ComputePhaseDiagram(p, 0.1, 100, 10, 1, 1e8, 10);
  std::string art = RenderPhaseDiagram(d);
  EXPECT_NE(art.find('R'), std::string::npos);
  EXPECT_NE(art.find('B'), std::string::npos);
  std::string csv = PhaseDiagramCsv(d);
  EXPECT_NE(csv.find("months,queries,winner"), std::string::npos);
  EXPECT_NE(csv.find("rottnest"), std::string::npos);
}

TEST(TcoTest, DeriveCostParamsScalesLinearly) {
  MeasuredWorkload m;
  m.data_bytes = 1e9;
  m.index_bytes = 2e8;
  m.rottnest_query_s = 2.0;
  m.rottnest_gets_per_query = 50;
  m.brute_force_query_s = 30.0;  // Already at target scale.
  m.brute_force_workers = 8;
  m.index_build_s = 600;
  m.copy_memory_bytes = 1.2e9;
  Pricing price;

  CostParams p1 = DeriveCostParams(m, price, 1.0);
  CostParams p10 = DeriveCostParams(m, price, 10.0);
  // Storage / indexing / brute-force query costs scale with data size...
  EXPECT_NEAR(p10.cpm_bf, 10 * p1.cpm_bf, 1e-9);
  EXPECT_NEAR(p10.ic_r, 10 * p1.ic_r, 1e-9);
  EXPECT_NEAR(p10.cpq_bf, p1.cpq_bf, 1e-9);  // Caller pre-scales BF time.
  // ...but Rottnest per-query cost does not (§VII-D2, post-compaction).
  EXPECT_NEAR(p10.cpq_r, p1.cpq_r, 1e-12);
  EXPECT_GT(p1.cpm_i, 0);
  EXPECT_GT(p1.cpq_r, 0);
}

TEST(TcoTest, RottnestQpsCap) {
  // 5500 GET RPS / prefix with ~55-550 GETs/query -> 10-100 QPS (§VII-D3).
  EXPECT_NEAR(RottnestMaxQps(55), 100.0, 1e-9);
  EXPECT_NEAR(RottnestMaxQps(550), 10.0, 1e-9);
}

TEST(TcoTest, DegenerateParamsStillPickAWinner) {
  CostParams p;  // All zero: ties broken toward Rottnest <= bf <= copy.
  EXPECT_EQ(Winner(p, 1, 1), Approach::kRottnest);
  p.cpq_r = 1.0;
  p.cpq_bf = 0.5;  // Rottnest never wins on queries.
  Boundaries b = ComputeBoundaries(p, 1);
  EXPECT_EQ(b.bf_to_rottnest, 0.0);  // fixed gap 0 -> wins at 0 queries...
}

}  // namespace
}  // namespace rottnest::tco
