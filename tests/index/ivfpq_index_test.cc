#include "index/ivfpq/ivfpq_index.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "index/ivfpq/kmeans.h"
#include "objectstore/object_store.h"

namespace rottnest::index {
namespace {

using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;

TEST(KMeansTest, SeparatesObviousClusters) {
  // Three well-separated 2D blobs.
  Random rng(1);
  std::vector<float> data;
  std::vector<int> truth;
  const float centers[3][2] = {{0, 0}, {100, 0}, {0, 100}};
  for (int i = 0; i < 300; ++i) {
    int c = i % 3;
    truth.push_back(c);
    data.push_back(centers[c][0] + static_cast<float>(rng.NextGaussian()));
    data.push_back(centers[c][1] + static_cast<float>(rng.NextGaussian()));
  }
  auto result = TrainKMeans(data.data(), 300, 2, 3, 20, 7);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  ASSERT_EQ(r.k, 3u);
  // All members of a true cluster must share an assignment.
  for (int c = 0; c < 3; ++c) {
    uint32_t expected = r.assignments[c];
    for (int i = c; i < 300; i += 3) {
      EXPECT_EQ(r.assignments[i], expected) << i;
    }
  }
}

TEST(KMeansTest, ClampsKToN) {
  std::vector<float> data = {1, 2, 3, 4};  // 2 vectors of dim 2.
  auto result = TrainKMeans(data.data(), 2, 2, 10, 5, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().k, 2u);
}

TEST(KMeansTest, DeterministicForSeed) {
  Random rng(3);
  std::vector<float> data;
  for (int i = 0; i < 400; ++i) data.push_back(static_cast<float>(rng.NextGaussian()));
  auto a = TrainKMeans(data.data(), 100, 4, 8, 10, 42);
  auto b = TrainKMeans(data.data(), 100, 4, 8, 10, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().centroids, b.value().centroids);
}

TEST(KMeansTest, NearestCentroidsOrdered) {
  std::vector<float> centroids = {0, 0, 10, 0, 20, 0};  // 3 x dim2
  float query[2] = {11, 0};
  auto nearest = NearestCentroids(centroids, 3, 2, query, 3);
  EXPECT_EQ(nearest, (std::vector<uint32_t>{1, 2, 0}));
}

// -- IVF-PQ -------------------------------------------------------------------

class IvfPqTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDim = 32;

  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
  ThreadPool pool_{4};
  std::vector<float> vectors_;  // Row-major ground-truth store.

  // Generates clustered vectors and builds an index; vector i lives at
  // page i / 100, row i % 100.
  void BuildIndex(const std::string& key, size_t n, uint64_t seed,
                  IvfPqOptions options = DefaultOptions()) {
    Random rng(seed);
    vectors_.clear();
    vectors_.reserve(n * kDim);
    // Mixture of 16 Gaussian clusters (SIFT-like clustered structure).
    std::vector<float> centers(16 * kDim);
    for (auto& c : centers) c = static_cast<float>(rng.NextGaussian() * 20);
    for (size_t i = 0; i < n; ++i) {
      size_t c = rng.Uniform(16);
      for (uint32_t d = 0; d < kDim; ++d) {
        vectors_.push_back(centers[c * kDim + d] +
                           static_cast<float>(rng.NextGaussian()));
      }
    }
    IvfPqIndexBuilder builder("vec", kDim, options);
    for (size_t i = 0; i < n; ++i) {
      builder.Add(vectors_.data() + i * kDim,
                  static_cast<format::PageId>(i / 100),
                  static_cast<uint32_t>(i % 100));
    }
    format::PageTable table = MakePageTable((n + 99) / 100);
    Buffer file;
    ASSERT_TRUE(builder.Finish(table, &file).ok());
    ASSERT_TRUE(store_.Put(key, Slice(file)).ok());
  }

  static IvfPqOptions DefaultOptions() {
    IvfPqOptions o;
    o.nlist = 32;
    o.num_subquantizers = 8;
    return o;
  }

  static format::PageTable MakePageTable(size_t pages) {
    format::FileMeta meta;
    meta.schema.columns.push_back(
        {"vec", format::PhysicalType::kFixedLenByteArray, kDim * 4});
    format::RowGroupMeta rg;
    format::ColumnChunkMeta cc;
    for (size_t p = 0; p < pages; ++p) {
      format::PageMeta pm;
      pm.offset = p * 10000;
      pm.size = 10000;
      pm.num_values = 100;
      pm.first_row = p * 100;
      cc.pages.push_back(pm);
    }
    rg.columns.push_back(cc);
    rg.num_rows = pages * 100;
    meta.row_groups.push_back(rg);
    format::PageTable table;
    table.AddFile("data/v.lake", meta, 0);
    return table;
  }

  // Exact k-NN over the ground-truth store.
  std::vector<size_t> ExactKnn(const float* query, size_t k) const {
    size_t n = vectors_.size() / kDim;
    std::vector<std::pair<float, size_t>> dists(n);
    for (size_t i = 0; i < n; ++i) {
      dists[i] = {SquaredL2(query, vectors_.data() + i * kDim, kDim), i};
    }
    std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
    std::vector<size_t> ids(k);
    for (size_t i = 0; i < k; ++i) ids[i] = dists[i].second;
    return ids;
  }

  // Recall@k of candidate set vs exact, matching on (page,row) identity.
  double RecallAtK(const std::vector<VectorCandidate>& got,
                   const std::vector<size_t>& exact, size_t k) const {
    std::set<std::pair<format::PageId, uint32_t>> got_set;
    for (const auto& c : got) got_set.insert({c.page, c.row_in_page});
    size_t hits = 0;
    for (size_t i = 0; i < k; ++i) {
      auto key = std::make_pair(static_cast<format::PageId>(exact[i] / 100),
                                static_cast<uint32_t>(exact[i] % 100));
      if (got_set.count(key)) ++hits;
    }
    return static_cast<double>(hits) / k;
  }
};

TEST_F(IvfPqTest, HighNprobeAchievesHighRecall) {
  BuildIndex("idx/v.index", 3000, 11);
  auto reader =
      ComponentFileReader::Open(&store_, "idx/v.index", nullptr).MoveValue();
  Random rng(77);
  double total_recall = 0;
  const int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    size_t pick = rng.Uniform(3000);
    std::vector<float> query(vectors_.begin() + pick * kDim,
                             vectors_.begin() + (pick + 1) * kDim);
    for (auto& v : query) v += static_cast<float>(rng.NextGaussian() * 0.1);
    auto exact = ExactKnn(query.data(), 10);
    std::vector<VectorCandidate> got;
    ASSERT_TRUE(IvfPqSearch(reader.get(), &pool_, nullptr, query.data(), kDim,
                            /*nprobe=*/32, /*max_candidates=*/100, &got)
                    .ok());
    total_recall += RecallAtK(got, exact, 10);
  }
  // Probing every list with generous candidates: near-exhaustive.
  EXPECT_GT(total_recall / kQueries, 0.9);
}

TEST_F(IvfPqTest, RecallImprovesWithNprobe) {
  BuildIndex("idx/v.index", 3000, 13);
  auto reader =
      ComponentFileReader::Open(&store_, "idx/v.index", nullptr).MoveValue();
  Random rng(88);
  double recall_low = 0, recall_high = 0;
  const int kQueries = 25;
  for (int q = 0; q < kQueries; ++q) {
    size_t pick = rng.Uniform(3000);
    std::vector<float> query(vectors_.begin() + pick * kDim,
                             vectors_.begin() + (pick + 1) * kDim);
    for (auto& v : query) v += static_cast<float>(rng.NextGaussian() * 0.5);
    auto exact = ExactKnn(query.data(), 10);
    std::vector<VectorCandidate> got;
    ASSERT_TRUE(IvfPqSearch(reader.get(), &pool_, nullptr, query.data(), kDim,
                            1, 50, &got)
                    .ok());
    recall_low += RecallAtK(got, exact, 10);
    ASSERT_TRUE(IvfPqSearch(reader.get(), &pool_, nullptr, query.data(), kDim,
                            16, 50, &got)
                    .ok());
    recall_high += RecallAtK(got, exact, 10);
  }
  EXPECT_GT(recall_high, recall_low);
}

TEST_F(IvfPqTest, SearchIsTwoRounds) {
  BuildIndex("idx/v.index", 2000, 5);
  IoTrace trace;
  auto reader =
      ComponentFileReader::Open(&store_, "idx/v.index", &trace).MoveValue();
  std::vector<float> query(vectors_.begin(), vectors_.begin() + kDim);
  std::vector<VectorCandidate> got;
  ASSERT_TRUE(IvfPqSearch(reader.get(), &pool_, &trace, query.data(), kDim, 8,
                          50, &got)
                  .ok());
  // Tail read (meta+centroids+codebooks) + one parallel round of lists.
  EXPECT_LE(trace.depth(), 2u);
  EXPECT_FALSE(got.empty());
}

TEST_F(IvfPqTest, CandidatesSortedByApproxDistance) {
  BuildIndex("idx/v.index", 1000, 3);
  auto reader =
      ComponentFileReader::Open(&store_, "idx/v.index", nullptr).MoveValue();
  std::vector<float> query(vectors_.begin(), vectors_.begin() + kDim);
  std::vector<VectorCandidate> got;
  ASSERT_TRUE(IvfPqSearch(reader.get(), &pool_, nullptr, query.data(), kDim,
                          16, 30, &got)
                  .ok());
  ASSERT_GT(got.size(), 1u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].approx_dist, got[i].approx_dist);
  }
  EXPECT_LE(got.size(), 30u);
}

TEST_F(IvfPqTest, DimensionMismatchRejected) {
  BuildIndex("idx/v.index", 500, 9);
  auto reader =
      ComponentFileReader::Open(&store_, "idx/v.index", nullptr).MoveValue();
  std::vector<float> query(64, 0.0f);
  std::vector<VectorCandidate> got;
  EXPECT_TRUE(IvfPqSearch(reader.get(), &pool_, nullptr, query.data(), 64, 4,
                          10, &got)
                  .IsInvalidArgument());
}

TEST_F(IvfPqTest, EmptyBuilderRejected) {
  IvfPqIndexBuilder builder("vec", kDim, DefaultOptions());
  Buffer out;
  EXPECT_TRUE(builder.Finish(format::PageTable{}, &out).IsInvalidArgument());
}

TEST_F(IvfPqTest, BadSubquantizerGeometryRejected) {
  IvfPqOptions options;
  options.num_subquantizers = 5;  // 32 % 5 != 0
  IvfPqIndexBuilder builder("vec", kDim, options);
  std::vector<float> v(kDim, 1.0f);
  builder.Add(v.data(), 0, 0);
  Buffer out;
  EXPECT_TRUE(builder.Finish(format::PageTable{}, &out).IsInvalidArgument());
}

TEST_F(IvfPqTest, MergePreservesSearchability) {
  BuildIndex("idx/a.index", 1500, 21);
  std::vector<float> vectors_a = vectors_;
  BuildIndex("idx/b.index", 1500, 22);
  std::vector<float> vectors_b = vectors_;

  auto ra =
      ComponentFileReader::Open(&store_, "idx/a.index", nullptr).MoveValue();
  auto rb =
      ComponentFileReader::Open(&store_, "idx/b.index", nullptr).MoveValue();
  Buffer merged;
  ASSERT_TRUE(
      IvfPqMerge({ra.get(), rb.get()}, &pool_, nullptr, "vec", &merged).ok());
  ASSERT_TRUE(store_.Put("idx/m.index", Slice(merged)).ok());
  auto rm =
      ComponentFileReader::Open(&store_, "idx/m.index", nullptr).MoveValue();

  // A query near a vector from input B must find its (remapped) location.
  // B's pages were absorbed after A's 15 pages.
  Random rng(5);
  int found = 0;
  const int kQueries = 15;
  for (int q = 0; q < kQueries; ++q) {
    size_t pick = rng.Uniform(1500);
    std::vector<float> query(vectors_b.begin() + pick * kDim,
                             vectors_b.begin() + (pick + 1) * kDim);
    std::vector<VectorCandidate> got;
    ASSERT_TRUE(IvfPqSearch(rm.get(), &pool_, nullptr, query.data(), kDim, 32,
                            50, &got)
                    .ok());
    format::PageId expect_page =
        static_cast<format::PageId>(pick / 100) + 15;
    uint32_t expect_row = static_cast<uint32_t>(pick % 100);
    for (const auto& c : got) {
      if (c.page == expect_page && c.row_in_page == expect_row) {
        ++found;
        break;
      }
    }
  }
  // Double quantization loses a little recall; the exact vector itself
  // should still surface nearly always with full probing.
  EXPECT_GE(found, kQueries - 3);

  // Merged page table spans both inputs.
  format::PageTable table;
  Buffer table_buf;
  ASSERT_TRUE(
      rm->ReadComponent("pagetable", &pool_, nullptr, &table_buf).ok());
  Decoder dec{Slice(table_buf)};
  ASSERT_TRUE(format::PageTable::Deserialize(&dec, &table).ok());
  EXPECT_EQ(table.num_files(), 2u);
  EXPECT_EQ(table.num_pages(), 30u);
}

}  // namespace
}  // namespace rottnest::index
