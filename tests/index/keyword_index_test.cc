#include "index/keyword/keyword_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "format/page_table.h"
#include "objectstore/object_store.h"

namespace rottnest::index {
namespace {

using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;

std::vector<std::string> Tokens(const std::string& text) {
  std::vector<std::string> out;
  Tokenize(Slice(text), &out);
  return out;
}

TEST(KeywordTokenizerTest, LowercasesAndSplitsOnNonAlnum) {
  EXPECT_EQ(Tokens("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(Tokens("a-b_c.d"), (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_EQ(Tokens("err404 trace7x"),
            (std::vector<std::string>{"err404", "trace7x"}));
}

TEST(KeywordTokenizerTest, EmptyAndPunctuationOnlyDocsYieldNoTokens) {
  EXPECT_TRUE(Tokens("").empty());
  EXPECT_TRUE(Tokens("  \t\n").empty());
  EXPECT_TRUE(Tokens("!!! ... ---,,,").empty());
}

TEST(KeywordTokenizerTest, NonAsciiBytesAreSeparators) {
  // Bytes >= 0x80 are not ASCII alphanumerics; they split runs just like
  // punctuation, keeping the tokenizer deterministic and locale-free.
  EXPECT_EQ(Tokens("caf\xc3\xa9 au lait"),
            (std::vector<std::string>{"caf", "au", "lait"}));
}

TEST(KeywordTokenizerTest, NormalizeTermAcceptsExactlyOneToken) {
  std::string out;
  EXPECT_TRUE(NormalizeTerm(Slice(std::string_view("  Hello!  ")), &out));
  EXPECT_EQ(out, "hello");
  EXPECT_FALSE(NormalizeTerm(Slice(std::string_view("")), &out));
  EXPECT_FALSE(NormalizeTerm(Slice(std::string_view("...")), &out));
  EXPECT_FALSE(NormalizeTerm(Slice(std::string_view("two words")), &out));
}

TEST(KeywordTokenizerTest, PreparePageTokensDeduplicatesWithinPage) {
  // Duplicate terms within a row (and across rows of one page) collapse to
  // one posting; empty / punctuation-only rows contribute nothing.
  std::vector<std::string> values = {"spark spark SPARK", "", "?!",
                                     "delta spark"};
  std::vector<std::string> tokens;
  KeywordIndexBuilder::PreparePageTokens(values, &tokens);
  EXPECT_EQ(tokens, (std::vector<std::string>{"delta", "spark"}));
}

std::vector<format::PageId> RoundTrip(const std::vector<format::PageId>& in) {
  Buffer buf;
  EncodePostings(in, &buf);
  Decoder dec{Slice(buf)};
  std::vector<format::PageId> out;
  EXPECT_TRUE(DecodePostings(&dec, &out).ok());
  EXPECT_EQ(dec.remaining(), 0u);
  return out;
}

TEST(KeywordPostingsCodecTest, RoundTripsEmptyAndSingleton) {
  EXPECT_TRUE(RoundTrip({}).empty());
  EXPECT_EQ(RoundTrip({0}), (std::vector<format::PageId>{0}));
  EXPECT_EQ(RoundTrip({12345}), (std::vector<format::PageId>{12345}));
}

TEST(KeywordPostingsCodecTest, RoundTripsAtEveryBitWidth) {
  // Gap of (1 << (w-1)) forces exactly bit width w; every width the page-id
  // domain can produce must survive the round trip.
  for (int w = 1; w <= 32; ++w) {
    std::vector<format::PageId> pages = {1};
    uint64_t gap = w == 1 ? 1 : (1ull << (w - 1));
    uint64_t next = 1 + gap;
    if (next > 0xffffffffull) break;
    pages.push_back(static_cast<format::PageId>(next));
    pages.push_back(static_cast<format::PageId>(next + 1));
    EXPECT_EQ(RoundTrip(pages), pages) << "width " << w;
  }
}

TEST(KeywordPostingsCodecTest, RoundTripsRandomSortedLists) {
  Random rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    std::set<format::PageId> set;
    size_t n = 1 + rng.Uniform(200);
    for (size_t i = 0; i < n; ++i) {
      set.insert(static_cast<format::PageId>(rng.Uniform(1u << 20)));
    }
    std::vector<format::PageId> pages(set.begin(), set.end());
    EXPECT_EQ(RoundTrip(pages), pages);
  }
}

TEST(KeywordPostingsCodecTest, RejectsCorruptWidth) {
  Buffer buf;
  EncodePostings({1, 2, 3}, &buf);
  // The width byte follows the varint count (count 3 = 1 byte).
  buf[1] = 0;  // width 0 is invalid for a non-empty list
  Decoder dec0{Slice(buf)};
  std::vector<format::PageId> out;
  EXPECT_FALSE(DecodePostings(&dec0, &out).ok());
  buf[1] = 57;  // > 56 would overflow the bit-unpack word
  Decoder dec57{Slice(buf)};
  EXPECT_FALSE(DecodePostings(&dec57, &out).ok());
}

// Index-file-level fixture: synthetic page table + builder/query/merge.
class KeywordIndexTest : public ::testing::Test {
 protected:
  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
  ThreadPool pool_{4};

  static format::PageTable MakePages(const std::string& file, size_t pages) {
    format::FileMeta meta;
    meta.schema.columns.push_back({"body", format::PhysicalType::kByteArray, 0});
    format::RowGroupMeta rg;
    rg.num_rows = pages * 10;
    format::ColumnChunkMeta cc;
    for (size_t p = 0; p < pages; ++p) {
      format::PageMeta pm;
      pm.offset = p * 100;
      pm.size = 100;
      pm.num_values = 10;
      pm.first_row = p * 10;
      cc.pages.push_back(pm);
    }
    rg.columns.push_back(cc);
    meta.row_groups.push_back(rg);
    format::PageTable table;
    table.AddFile(file, meta, 0);
    return table;
  }

  // Builds an index over synthetic terms; returns term -> expected pages.
  std::map<std::string, std::vector<format::PageId>> BuildIndex(
      const std::string& object_key, size_t num_postings, uint64_t seed,
      size_t pages = 64) {
    format::PageTable table = MakePages("data/" + object_key + ".lake", pages);
    KeywordIndexBuilder builder("body");
    std::map<std::string, std::vector<format::PageId>> expected;
    Random rng(seed);
    for (size_t i = 0; i < num_postings; ++i) {
      std::string term = "term" + std::to_string(rng.Uniform(300));
      format::PageId page = static_cast<format::PageId>(rng.Uniform(pages));
      builder.Add(term, page);
      auto& v = expected[term];
      v.push_back(page);
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    Buffer file;
    EXPECT_TRUE(builder.Finish(table, &file).ok());
    EXPECT_TRUE(store_.Put(object_key, Slice(file)).ok());
    return expected;
  }

  std::unique_ptr<ComponentFileReader> Open(const std::string& key,
                                            IoTrace* trace = nullptr) {
    return ComponentFileReader::Open(&store_, key, trace).MoveValue();
  }
};

TEST_F(KeywordIndexTest, SingleTermLookupFindsAllPostings) {
  auto expected = BuildIndex("idx/k.index", 5000, 17);
  auto reader = Open("idx/k.index");
  for (const auto& [term, pages] : expected) {
    std::vector<format::PageId> got;
    ASSERT_TRUE(KeywordQuery(reader.get(), &pool_, nullptr, term, &got).ok());
    EXPECT_EQ(got, pages) << term;
  }
}

TEST_F(KeywordIndexTest, MissingTermsReturnNothing) {
  BuildIndex("idx/k.index", 5000, 17);
  auto reader = Open("idx/k.index");
  for (const std::string& term :
       {"absent", "aaaa", "zzzz", "term99999", "term"}) {
    std::vector<format::PageId> got;
    ASSERT_TRUE(KeywordQuery(reader.get(), &pool_, nullptr, term, &got).ok());
    EXPECT_TRUE(got.empty()) << term;
  }
}

TEST_F(KeywordIndexTest, AndIntersectsOrUnions) {
  format::PageTable table = MakePages("data/f.lake", 16);
  KeywordIndexBuilder builder("body");
  builder.Add("alpha", 1);
  builder.Add("alpha", 3);
  builder.Add("alpha", 5);
  builder.Add("beta", 3);
  builder.Add("beta", 7);
  Buffer file;
  ASSERT_TRUE(builder.Finish(table, &file).ok());
  ASSERT_TRUE(store_.Put("idx/b.index", Slice(file)).ok());
  auto reader = Open("idx/b.index");

  std::vector<format::PageId> got;
  ASSERT_TRUE(KeywordQueryMany(reader.get(), &pool_, nullptr,
                               {"alpha", "beta"}, /*require_all=*/true, &got)
                  .ok());
  EXPECT_EQ(got, (std::vector<format::PageId>{3}));
  ASSERT_TRUE(KeywordQueryMany(reader.get(), &pool_, nullptr,
                               {"alpha", "beta"}, /*require_all=*/false, &got)
                  .ok());
  EXPECT_EQ(got, (std::vector<format::PageId>{1, 3, 5, 7}));
  // AND with an absent term is empty, OR ignores it.
  ASSERT_TRUE(KeywordQueryMany(reader.get(), &pool_, nullptr,
                               {"alpha", "absent"}, /*require_all=*/true, &got)
                  .ok());
  EXPECT_TRUE(got.empty());
  ASSERT_TRUE(KeywordQueryMany(reader.get(), &pool_, nullptr,
                               {"alpha", "absent"}, /*require_all=*/false,
                               &got)
                  .ok());
  EXPECT_EQ(got, (std::vector<format::PageId>{1, 3, 5}));
}

TEST_F(KeywordIndexTest, MultiTermLookupIsOnePostingRound) {
  BuildIndex("idx/k.index", 20000, 23);
  IoTrace trace;
  auto reader = Open("idx/k.index", &trace);
  std::vector<format::PageId> got;
  ASSERT_TRUE(KeywordQueryMany(reader.get(), &pool_, &trace,
                               {"term1", "term7", "term250"},
                               /*require_all=*/false, &got)
                  .ok());
  // Open (tail incl. dict) + at most one posting-component round.
  EXPECT_LE(trace.depth(), 2u);
}

TEST_F(KeywordIndexTest, FinishIsByteIdenticalAcrossThreadCounts) {
  format::PageTable table = MakePages("data/f.lake", 64);
  auto build = [&](ThreadPool* pool) {
    KeywordIndexBuilder builder("body");
    Random rng(99);
    for (size_t i = 0; i < 30000; ++i) {
      builder.Add("w" + std::to_string(rng.Uniform(2000)),
                  static_cast<format::PageId>(rng.Uniform(64)));
    }
    Buffer file;
    EXPECT_TRUE(builder.Finish(table, pool, &file).ok());
    return file;
  };
  Buffer serial = build(nullptr);
  Buffer parallel = build(&pool_);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(Slice(serial), Slice(parallel));
}

TEST_F(KeywordIndexTest, EmptyIndexReturnsNothing) {
  format::PageTable table;
  KeywordIndexBuilder builder("body");
  Buffer file;
  ASSERT_TRUE(builder.Finish(table, &file).ok());
  ASSERT_TRUE(store_.Put("idx/e.index", Slice(file)).ok());
  auto reader = Open("idx/e.index");
  std::vector<format::PageId> got;
  ASSERT_TRUE(KeywordQuery(reader.get(), &pool_, nullptr, "any", &got).ok());
  EXPECT_TRUE(got.empty());
}

TEST_F(KeywordIndexTest, MergeUnionsTermsAndRemapsPages) {
  auto expected_a = BuildIndex("idx/a.index", 3000, 100);
  auto expected_b = BuildIndex("idx/b.index", 3000, 200);
  auto ra = Open("idx/a.index");
  auto rb = Open("idx/b.index");
  Buffer merged;
  ASSERT_TRUE(KeywordMerge({ra.get(), rb.get()}, &pool_, nullptr, "body",
                           &merged)
                  .ok());
  ASSERT_TRUE(store_.Put("idx/m.index", Slice(merged)).ok());
  auto rm = Open("idx/m.index");

  // Expected merged postings: A's pages unchanged, B's offset by A's 64.
  std::map<std::string, std::vector<format::PageId>> expected;
  for (const auto& [term, pages] : expected_a) {
    auto& v = expected[term];
    v.insert(v.end(), pages.begin(), pages.end());
  }
  for (const auto& [term, pages] : expected_b) {
    auto& v = expected[term];
    for (format::PageId p : pages) v.push_back(p + 64);
    std::sort(v.begin(), v.end());
  }
  for (const auto& [term, pages] : expected) {
    std::vector<format::PageId> got;
    ASSERT_TRUE(KeywordQuery(rm.get(), &pool_, nullptr, term, &got).ok());
    EXPECT_EQ(got, pages) << term;
  }
}

TEST_F(KeywordIndexTest, MergeMatchesDirectBuildByteForByte) {
  // The PR 3 contract transplanted: merging two halves must emit the exact
  // bytes of building the union directly over the concatenated page table.
  format::PageTable table_a = MakePages("data/a.lake", 32);
  format::PageTable table_b = MakePages("data/b.lake", 32);
  KeywordIndexBuilder ba("body");
  KeywordIndexBuilder bb("body");
  KeywordIndexBuilder direct("body");
  Random rng(5);
  for (size_t i = 0; i < 20000; ++i) {
    std::string term = "w" + std::to_string(rng.Uniform(1500));
    format::PageId page = static_cast<format::PageId>(rng.Uniform(32));
    if (rng.Uniform(2) == 0) {
      ba.Add(term, page);
      direct.Add(term, page);
    } else {
      bb.Add(term, page);
      direct.Add(term, page + 32);
    }
  }
  Buffer file_a, file_b;
  ASSERT_TRUE(ba.Finish(table_a, &file_a).ok());
  ASSERT_TRUE(bb.Finish(table_b, &file_b).ok());
  ASSERT_TRUE(store_.Put("idx/a.index", Slice(file_a)).ok());
  ASSERT_TRUE(store_.Put("idx/b.index", Slice(file_b)).ok());

  format::PageTable merged_table = MakePages("data/a.lake", 32);
  format::PageTable table_b2 = MakePages("data/b.lake", 32);
  merged_table.Absorb(table_b2);
  Buffer direct_file;
  ASSERT_TRUE(direct.Finish(merged_table, &direct_file).ok());

  auto ra = Open("idx/a.index");
  auto rb = Open("idx/b.index");
  Buffer merged_serial, merged_parallel;
  ASSERT_TRUE(KeywordMerge({ra.get(), rb.get()}, nullptr, nullptr, "body",
                           &merged_serial)
                  .ok());
  auto ra2 = Open("idx/a.index");
  auto rb2 = Open("idx/b.index");
  ASSERT_TRUE(KeywordMerge({ra2.get(), rb2.get()}, &pool_, nullptr, "body",
                           &merged_parallel)
                  .ok());
  EXPECT_EQ(Slice(merged_serial), Slice(direct_file));
  EXPECT_EQ(Slice(merged_parallel), Slice(direct_file));
}

TEST_F(KeywordIndexTest, CollectStatsTalliesPostings) {
  auto expected = BuildIndex("idx/k.index", 4000, 11);
  uint64_t postings = 0;
  for (const auto& [term, pages] : expected) postings += pages.size();
  auto reader = Open("idx/k.index");
  KeywordIndexStats stats;
  ASSERT_TRUE(CollectKeywordStats(reader.get(), &pool_, nullptr, &stats).ok());
  EXPECT_EQ(stats.terms, expected.size());
  EXPECT_EQ(stats.postings, postings);
  EXPECT_GT(stats.encoded_posting_bytes, 0u);
  // Delta+bitpack must beat raw 4-byte page ids on this Zipf-ish data.
  EXPECT_LT(stats.encoded_posting_bytes, postings * sizeof(format::PageId));
}

}  // namespace
}  // namespace rottnest::index
