#include "index/trie/trie_index.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "format/writer.h"
#include "objectstore/object_store.h"

namespace rottnest::index {
namespace {

using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;

TEST(Key128Test, BitAccess) {
  Key128 k;
  k.hi = 1ULL << 63;  // bit 0 set
  k.lo = 1;           // bit 127 set
  EXPECT_TRUE(k.Bit(0));
  EXPECT_FALSE(k.Bit(1));
  EXPECT_FALSE(k.Bit(126));
  EXPECT_TRUE(k.Bit(127));
}

TEST(Key128Test, Truncate) {
  Key128 k{0xffffffffffffffffULL, 0xffffffffffffffffULL};
  EXPECT_EQ(k.Truncate(0).hi, 0u);
  EXPECT_EQ(k.Truncate(1).hi, 1ULL << 63);
  EXPECT_EQ(k.Truncate(64).hi, ~0ULL);
  EXPECT_EQ(k.Truncate(64).lo, 0u);
  EXPECT_EQ(k.Truncate(65).lo, 1ULL << 63);
  EXPECT_EQ(k.Truncate(128), k);
}

TEST(Key128Test, CommonPrefixLen) {
  Key128 a{0x8000000000000000ULL, 0};
  Key128 b{0x8000000000000000ULL, 0};
  EXPECT_EQ(a.CommonPrefixLen(b), 128);
  b.lo = 1;
  EXPECT_EQ(a.CommonPrefixLen(b), 127);
  b = Key128{0, 0};
  EXPECT_EQ(a.CommonPrefixLen(b), 0);
  b = Key128{0x8000000000000001ULL, 0};
  EXPECT_EQ(a.CommonPrefixLen(b), 63);
}

TEST(Key128Test, KeyFromValuePreservesRawUuids) {
  Buffer uuid(16);
  for (int i = 0; i < 16; ++i) uuid[i] = static_cast<uint8_t>(i + 1);
  Key128 k = KeyFromValue(Slice(uuid));
  EXPECT_EQ(k.hi, 0x0102030405060708ULL);
  EXPECT_EQ(k.lo, 0x090a0b0c0d0e0f10ULL);
}

TEST(Key128Test, KeyFromValueHashesOtherSizes) {
  std::string long_hash(128, 'x');
  Key128 a = KeyFromValue(Slice(long_hash));
  Key128 b = KeyFromValue(Slice(long_hash));
  EXPECT_EQ(a, b);
  std::string other(128, 'y');
  EXPECT_FALSE(KeyFromValue(Slice(other)) == a);
}

class TrieIndexTest : public ::testing::Test {
 protected:
  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
  ThreadPool pool_{4};

  // Builds an index over synthetic keys; returns key -> expected pages.
  std::map<uint64_t, std::vector<format::PageId>> BuildIndex(
      const std::string& object_key, size_t num_keys, uint64_t seed,
      size_t pages = 64) {
    // Fabricate a tiny page table (entries are never dereferenced here).
    format::FileMeta meta;
    meta.schema.columns.push_back(
        {"uuid", format::PhysicalType::kFixedLenByteArray, 16});
    format::RowGroupMeta rg;
    rg.num_rows = pages * 10;
    for (size_t p = 0; p < pages; ++p) {
      format::ColumnChunkMeta cc;
      (void)cc;
    }
    format::ColumnChunkMeta cc;
    for (size_t p = 0; p < pages; ++p) {
      format::PageMeta pm;
      pm.offset = p * 100;
      pm.size = 100;
      pm.num_values = 10;
      pm.first_row = p * 10;
      cc.pages.push_back(pm);
    }
    rg.columns.push_back(cc);
    meta.row_groups.push_back(rg);
    format::PageTable table;
    table.AddFile("data/file.lake", meta, 0);

    TrieIndexBuilder builder("uuid");
    std::map<uint64_t, std::vector<format::PageId>> expected;
    Random rng(seed);
    for (size_t i = 0; i < num_keys; ++i) {
      uint64_t id = rng.Next();
      Key128 key{Mix64(id), Mix64(id ^ 0x1234)};
      format::PageId page = static_cast<format::PageId>(rng.Uniform(pages));
      builder.Add(key, page);
      auto& v = expected[id];
      v.push_back(page);
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    Buffer file;
    EXPECT_TRUE(builder.Finish(table, &file).ok());
    EXPECT_TRUE(store_.Put(object_key, Slice(file)).ok());
    return expected;
  }
};

TEST_F(TrieIndexTest, ExactLookupFindsAllPostings) {
  auto expected = BuildIndex("idx/t.index", 5000, 17);
  auto reader = ComponentFileReader::Open(&store_, "idx/t.index", nullptr)
                    .MoveValue();
  int checked = 0;
  for (const auto& [id, pages] : expected) {
    if (++checked > 300) break;  // Sample for speed.
    Key128 key{Mix64(id), Mix64(id ^ 0x1234)};
    std::vector<format::PageId> got;
    ASSERT_TRUE(TrieQuery(reader.get(), &pool_, nullptr, key, &got).ok());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, pages) << "id " << id;
  }
}

TEST_F(TrieIndexTest, MissingKeysUsuallyReturnNothing) {
  BuildIndex("idx/t.index", 5000, 17);
  auto reader = ComponentFileReader::Open(&store_, "idx/t.index", nullptr)
                    .MoveValue();
  Random rng(999);
  int false_positives = 0;
  for (int i = 0; i < 300; ++i) {
    Key128 key{rng.Next(), rng.Next()};
    std::vector<format::PageId> got;
    ASSERT_TRUE(TrieQuery(reader.get(), &pool_, nullptr, key, &got).ok());
    if (!got.empty()) ++false_positives;
  }
  // LCP+8-bit truncation admits rare false positives; they must stay rare.
  EXPECT_LE(false_positives, 3);
}

TEST_F(TrieIndexTest, LookupDepthIsTwoRounds) {
  BuildIndex("idx/t.index", 20000, 23);
  IoTrace trace;
  auto reader = ComponentFileReader::Open(&store_, "idx/t.index", &trace)
                    .MoveValue();
  Key128 key{Mix64(42), Mix64(42 ^ 0x1234)};
  std::vector<format::PageId> got;
  ASSERT_TRUE(TrieQuery(reader.get(), &pool_, &trace, key, &got).ok());
  // Open (tail incl. root) + at most one leaf round.
  EXPECT_LE(trace.depth(), 2u);
  EXPECT_LE(trace.total_gets(), 2u);
}

TEST_F(TrieIndexTest, EmptyIndexReturnsNothing) {
  format::PageTable table;
  TrieIndexBuilder builder("uuid");
  Buffer file;
  ASSERT_TRUE(builder.Finish(table, &file).ok());
  ASSERT_TRUE(store_.Put("idx/e.index", Slice(file)).ok());
  auto reader = ComponentFileReader::Open(&store_, "idx/e.index", nullptr)
                    .MoveValue();
  std::vector<format::PageId> got;
  ASSERT_TRUE(TrieQuery(reader.get(), &pool_, nullptr, Key128{1, 2}, &got).ok());
  EXPECT_TRUE(got.empty());
}

TEST_F(TrieIndexTest, DuplicateKeyAcrossPagesKeepsAllPages) {
  format::PageTable table;
  TrieIndexBuilder builder("uuid");
  Key128 k{0xabc, 0xdef};
  builder.Add(k, 3);
  builder.Add(k, 1);
  builder.Add(k, 3);  // duplicate (key,page)
  builder.Add(Key128{0xabc, 0xdf0}, 2);
  Buffer file;
  ASSERT_TRUE(builder.Finish(table, &file).ok());
  ASSERT_TRUE(store_.Put("idx/d.index", Slice(file)).ok());
  auto reader = ComponentFileReader::Open(&store_, "idx/d.index", nullptr)
                    .MoveValue();
  std::vector<format::PageId> got;
  ASSERT_TRUE(TrieQuery(reader.get(), &pool_, nullptr, k, &got).ok());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<format::PageId>{1, 3}));
}

TEST_F(TrieIndexTest, PageTableEmbedded) {
  BuildIndex("idx/t.index", 100, 3);
  auto reader = ComponentFileReader::Open(&store_, "idx/t.index", nullptr)
                    .MoveValue();
  format::PageTable table;
  ASSERT_TRUE(LoadPageTable(reader.get(), &pool_, nullptr, &table).ok());
  EXPECT_EQ(table.num_files(), 1u);
  EXPECT_EQ(table.files()[0], "data/file.lake");
  EXPECT_EQ(table.num_pages(), 64u);
}

TEST_F(TrieIndexTest, MergePreservesAllKeys) {
  auto expected_a = BuildIndex("idx/a.index", 2000, 100);
  auto expected_b = BuildIndex("idx/b.index", 2000, 200);

  auto ra = ComponentFileReader::Open(&store_, "idx/a.index", nullptr)
                .MoveValue();
  auto rb = ComponentFileReader::Open(&store_, "idx/b.index", nullptr)
                .MoveValue();
  Buffer merged;
  ASSERT_TRUE(
      TrieMerge({ra.get(), rb.get()}, &pool_, nullptr, "uuid", &merged).ok());
  ASSERT_TRUE(store_.Put("idx/m.index", Slice(merged)).ok());
  auto rm = ComponentFileReader::Open(&store_, "idx/m.index", nullptr)
                .MoveValue();

  // Merged page table concatenates both inputs' tables.
  format::PageTable table;
  ASSERT_TRUE(LoadPageTable(rm.get(), &pool_, nullptr, &table).ok());
  EXPECT_EQ(table.num_files(), 2u);
  EXPECT_EQ(table.num_pages(), 128u);

  // Every key from input A must be found, mapped into the merged table's
  // id space (A absorbed first: ids unchanged).
  int checked = 0;
  for (const auto& [id, pages] : expected_a) {
    if (++checked > 150) break;
    Key128 key{Mix64(id), Mix64(id ^ 0x1234)};
    std::vector<format::PageId> got;
    ASSERT_TRUE(TrieQuery(rm.get(), &pool_, nullptr, key, &got).ok());
    for (format::PageId p : pages) {
      EXPECT_TRUE(std::find(got.begin(), got.end(), p) != got.end())
          << "id " << id << " page " << p;
    }
  }
  // Keys from input B land at offset 64 (B's table absorbed after A's).
  checked = 0;
  for (const auto& [id, pages] : expected_b) {
    if (++checked > 150) break;
    Key128 key{Mix64(id), Mix64(id ^ 0x1234)};
    std::vector<format::PageId> got;
    ASSERT_TRUE(TrieQuery(rm.get(), &pool_, nullptr, key, &got).ok());
    for (format::PageId p : pages) {
      EXPECT_TRUE(std::find(got.begin(), got.end(), p + 64) != got.end())
          << "id " << id << " page " << p;
    }
  }
}

TEST_F(TrieIndexTest, MergedIndexStillTwoRoundLookups) {
  BuildIndex("idx/a.index", 3000, 1);
  BuildIndex("idx/b.index", 3000, 2);
  auto ra = ComponentFileReader::Open(&store_, "idx/a.index", nullptr)
                .MoveValue();
  auto rb = ComponentFileReader::Open(&store_, "idx/b.index", nullptr)
                .MoveValue();
  Buffer merged;
  ASSERT_TRUE(
      TrieMerge({ra.get(), rb.get()}, &pool_, nullptr, "uuid", &merged).ok());
  ASSERT_TRUE(store_.Put("idx/m.index", Slice(merged)).ok());

  IoTrace trace;
  auto rm =
      ComponentFileReader::Open(&store_, "idx/m.index", &trace).MoveValue();
  std::vector<format::PageId> got;
  ASSERT_TRUE(
      TrieQuery(rm.get(), &pool_, &trace, Key128{Mix64(7), Mix64(7 ^ 0x1234)},
                &got)
          .ok());
  EXPECT_LE(trace.depth(), 2u);
}

}  // namespace
}  // namespace rottnest::index
