// Exhaustive latent-corruption sweep over the componentized index file
// format (anti-entropy contract): for EVERY single-byte flip and EVERY
// truncation length of a small index file, every read path must either
// return Corruption or the correct bytes — never an OK status with wrong
// data. This is the property the Scrub/Repair subsystem leans on: damage
// anywhere in an index object is detectable by reading it, so a deep audit
// that re-checks all component checksums finds all rot.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "index/component_file.h"
#include "objectstore/object_store.h"

namespace rottnest::index {
namespace {

using objectstore::InMemoryObjectStore;

class CorruptionSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three components: incompressible noise (stored raw), compressible
    // text (stored LZ-compressed, so flips also hit the decompressor), and
    // a small root. Sizes keep the whole file a few hundred bytes so the
    // exhaustive sweep stays fast, but large enough that with a tiny tail
    // read nothing is verified at open.
    Random rng(7);
    Buffer noise(230);
    for (auto& b : noise) b = static_cast<uint8_t>(rng.Next());
    std::string text;
    for (int i = 0; i < 40; ++i) text += "abcabcabc row payload ";
    Buffer root(48, 0x5a);

    ComponentFileWriter writer(IndexType::kTrie, "uuid");
    ASSERT_TRUE(writer.AddComponent("leaf_noise", Slice(noise)).ok());
    ASSERT_TRUE(writer.AddComponent("leaf_text", Slice(text)).ok());
    ASSERT_TRUE(writer.AddComponent("root", Slice(root)).ok());
    ASSERT_TRUE(writer.Finish(&pristine_).ok());

    truth_.push_back(noise);
    truth_.push_back(Buffer(text.begin(), text.end()));
    truth_.push_back(root);
    names_ = {"leaf_noise", "leaf_text", "root"};
  }

  // Reads the image stored at `key` through every path: Open (with the
  // given tail size), ReadComponents over all names, and the deep
  // VerifyComponents audit. Returns true when ANY path reported damage.
  // Fails the test if any path returned OK with bytes that differ from the
  // pristine truth — the one outcome the format must never produce.
  bool Probe(InMemoryObjectStore* store, size_t tail_bytes,
             const std::string& context) {
    auto opened =
        ComponentFileReader::Open(store, "idx/sweep.index", nullptr,
                                  tail_bytes);
    if (!opened.ok()) {
      EXPECT_TRUE(opened.status().IsCorruption())
          << context << ": open failed with non-Corruption status: "
          << opened.status().ToString();
      return true;
    }
    auto& reader = opened.value();
    bool damaged = false;

    std::vector<Buffer> payloads;
    Status read = reader->ReadComponents(names_, nullptr, nullptr, &payloads);
    if (!read.ok()) {
      EXPECT_TRUE(read.IsCorruption())
          << context
          << ": read failed with non-Corruption status: " << read.ToString();
      damaged = true;
    } else {
      for (size_t i = 0; i < names_.size(); ++i) {
        // The inviolable line: an OK read must return the true bytes.
        EXPECT_EQ(payloads[i], truth_[i])
            << context << ": component " << names_[i]
            << " read OK but returned WRONG bytes";
      }
    }

    std::vector<ComponentDamage> damage;
    Status verify = reader->VerifyComponents(names_, nullptr, &damage, nullptr);
    EXPECT_TRUE(verify.ok()) << context << ": " << verify.ToString();
    for (const auto& d : damage) {
      EXPECT_TRUE(d.status.IsCorruption())
          << context << ": verify blamed " << d.name
          << " with non-Corruption status: " << d.status.ToString();
    }
    if (!damage.empty()) damaged = true;
    return damaged;
  }

  SimulatedClock clock_;
  Buffer pristine_;
  std::vector<Buffer> truth_;
  std::vector<std::string> names_;
};

TEST_F(CorruptionSweepTest, PristineFileReadsCleanlyAtAnyTailSize) {
  InMemoryObjectStore store(&clock_);
  ASSERT_TRUE(store.Put("idx/sweep.index", Slice(pristine_)).ok());
  EXPECT_FALSE(Probe(&store, 64, "pristine tail=64"));
  EXPECT_FALSE(Probe(&store, 256 << 10, "pristine tail=256K"));
}

TEST_F(CorruptionSweepTest, EverySingleByteFlipIsDetected) {
  // Flip one byte at every offset. With a 64-byte tail nothing is verified
  // at open, so payload damage must be caught by the per-read checksums;
  // with the default 256K tail everything is in the tail and Open itself
  // must reject payload damage. Either way: Corruption or correct data.
  InMemoryObjectStore store(&clock_);
  for (size_t off = 0; off < pristine_.size(); ++off) {
    Buffer mutated = pristine_;
    mutated[off] ^= 0xff;
    ASSERT_TRUE(store.Put("idx/sweep.index", Slice(mutated)).ok());
    std::string ctx = "flip@" + std::to_string(off);
    bool small_tail = Probe(&store, 64, ctx + " tail=64");
    bool big_tail = Probe(&store, 256 << 10, ctx + " tail=256K");
    // Every byte of the image is covered by a checksum (magic, payloads,
    // directory, directory checksum/length): some path must notice.
    EXPECT_TRUE(small_tail || big_tail)
        << ctx << ": flip went completely undetected";
    // With everything in the tail, Open-time verification alone must
    // already refuse the file or the flip must be caught on read.
    EXPECT_TRUE(big_tail) << ctx << ": undetected with full tail read";
  }
}

TEST_F(CorruptionSweepTest, EveryTruncationLengthIsRejected) {
  // Scripted truncation model: the stored object is cut to every possible
  // prefix length. The directory lives at the tail, so no prefix can parse
  // as a valid file — Open must fail with Corruption at every length,
  // never read wrong data.
  InMemoryObjectStore store(&clock_);
  for (size_t len = 0; len < pristine_.size(); ++len) {
    Buffer cut(pristine_.begin(), pristine_.begin() + len);
    ASSERT_TRUE(store.Put("idx/sweep.index", Slice(cut)).ok());
    auto opened =
        ComponentFileReader::Open(&store, "idx/sweep.index", nullptr);
    ASSERT_FALSE(opened.ok()) << "truncate@" << len << " opened successfully";
    EXPECT_TRUE(opened.status().IsCorruption())
        << "truncate@" << len << ": " << opened.status().ToString();
  }
}

TEST_F(CorruptionSweepTest, DeepVerifyBlamesExactlyTheDamagedComponent) {
  // VerifyComponents is Scrub's workhorse: it must localize damage to the
  // right component and keep scanning past it (no fail-fast).
  InMemoryObjectStore store(&clock_);
  ASSERT_TRUE(store.Put("idx/sweep.index", Slice(pristine_)).ok());
  auto opened = ComponentFileReader::Open(&store, "idx/sweep.index", nullptr,
                                          /*tail_bytes=*/64);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& reader = opened.value();

  // Damage the FIRST component's payload in the stored object after open:
  // the reader's directory is already parsed, so only the deep re-fetch can
  // notice.
  Buffer mutated = pristine_;
  mutated[6] ^= 0x01;  // Offset 6 is inside the first payload (magic is 4B).
  ASSERT_TRUE(store.Put("idx/sweep.index", Slice(mutated)).ok());

  std::vector<ComponentDamage> damage;
  uint64_t fetched = 0;
  ASSERT_TRUE(
      reader->VerifyComponents(names_, nullptr, &damage, &fetched).ok());
  ASSERT_EQ(damage.size(), 1u);
  EXPECT_EQ(damage[0].name, "leaf_noise");
  EXPECT_TRUE(damage[0].status.IsCorruption());
  EXPECT_GT(fetched, 0u);

  // Unknown names are an InvalidArgument, not a finding.
  damage.clear();
  EXPECT_TRUE(reader->VerifyComponents({"no_such"}, nullptr, &damage, nullptr)
                  .IsInvalidArgument());
  EXPECT_TRUE(damage.empty());
}

}  // namespace
}  // namespace rottnest::index
