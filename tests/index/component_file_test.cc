#include "index/component_file.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "objectstore/object_store.h"

namespace rottnest::index {
namespace {

using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;

Buffer Bytes(const std::string& s) { return Buffer(s.begin(), s.end()); }

class ComponentFileTest : public ::testing::Test {
 protected:
  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
};

TEST_F(ComponentFileTest, WriteReadRoundTrip) {
  ComponentFileWriter writer(IndexType::kTrie, "uuid");
  ASSERT_TRUE(writer.AddComponent("leaf.0", Slice(Bytes("leafdata0"))).ok());
  ASSERT_TRUE(writer.AddComponent("leaf.1", Slice(Bytes("leafdata1"))).ok());
  ASSERT_TRUE(writer.AddComponent("root", Slice(Bytes("rootdata"))).ok());
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  ASSERT_TRUE(store_.Put("idx/a.index", Slice(file)).ok());

  auto reader_r = ComponentFileReader::Open(&store_, "idx/a.index", nullptr);
  ASSERT_TRUE(reader_r.ok()) << reader_r.status().ToString();
  auto& reader = *reader_r.value();
  EXPECT_EQ(reader.type(), IndexType::kTrie);
  EXPECT_EQ(reader.column(), "uuid");
  EXPECT_TRUE(reader.HasComponent("leaf.0"));
  EXPECT_TRUE(reader.HasComponent("root"));
  EXPECT_FALSE(reader.HasComponent("ghost"));

  Buffer payload;
  ASSERT_TRUE(reader.ReadComponent("leaf.1", nullptr, nullptr, &payload).ok());
  EXPECT_EQ(payload, Bytes("leafdata1"));
  ASSERT_TRUE(reader.ReadComponent("root", nullptr, nullptr, &payload).ok());
  EXPECT_EQ(payload, Bytes("rootdata"));
}

TEST_F(ComponentFileTest, DuplicateComponentRejected) {
  ComponentFileWriter writer(IndexType::kFm, "body");
  ASSERT_TRUE(writer.AddComponent("x", Slice(Bytes("a"))).ok());
  EXPECT_TRUE(writer.AddComponent("x", Slice(Bytes("b"))).IsInvalidArgument());
}

TEST_F(ComponentFileTest, CompressibleComponentsShrink) {
  ComponentFileWriter writer(IndexType::kFm, "body");
  Buffer big(1 << 20, 0x61);  // 1MB of 'a'.
  ASSERT_TRUE(writer.AddComponent("x", Slice(big)).ok());
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  EXPECT_LT(file.size(), big.size() / 50);

  ASSERT_TRUE(store_.Put("k", Slice(file)).ok());
  auto reader = ComponentFileReader::Open(&store_, "k", nullptr).MoveValue();
  Buffer payload;
  ASSERT_TRUE(reader->ReadComponent("x", nullptr, nullptr, &payload).ok());
  EXPECT_EQ(payload, big);
}

TEST_F(ComponentFileTest, TailComponentsCostNoExtraIo) {
  // A component written last is served from the tail read: Open + read of
  // the last component = exactly 1 GET.
  ComponentFileWriter writer(IndexType::kTrie, "uuid");
  Random rng(7);
  Buffer big(512 << 10);
  for (auto& b : big) b = static_cast<uint8_t>(rng.Next());  // incompressible
  ASSERT_TRUE(writer.AddComponent("bulk", Slice(big)).ok());
  ASSERT_TRUE(writer.AddComponent("root", Slice(Bytes("tiny root"))).ok());
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  ASSERT_TRUE(store_.Put("k", Slice(file)).ok());

  IoTrace trace;
  auto reader = ComponentFileReader::Open(&store_, "k", &trace).MoveValue();
  Buffer payload;
  ASSERT_TRUE(reader->ReadComponent("root", nullptr, &trace, &payload).ok());
  EXPECT_EQ(payload, Bytes("tiny root"));
  EXPECT_EQ(trace.total_gets(), 1u);  // Tail read only.
  EXPECT_EQ(trace.depth(), 1u);

  // The bulk component needs one more dependent round.
  ASSERT_TRUE(reader->ReadComponent("bulk", nullptr, &trace, &payload).ok());
  EXPECT_EQ(payload, big);
  EXPECT_EQ(trace.total_gets(), 2u);
  EXPECT_EQ(trace.depth(), 2u);
}

TEST_F(ComponentFileTest, BatchReadIsOneRound) {
  ComponentFileWriter writer(IndexType::kIvfPq, "vec");
  Random rng(9);
  for (int i = 0; i < 16; ++i) {
    Buffer data(32 << 10);
    for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
    ASSERT_TRUE(
        writer.AddComponent("list." + std::to_string(i), Slice(data)).ok());
  }
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  ASSERT_TRUE(store_.Put("k", Slice(file)).ok());

  IoTrace trace;
  ThreadPool pool(4);
  auto reader = ComponentFileReader::Open(&store_, "k", &trace).MoveValue();
  size_t depth_after_open = trace.depth();
  std::vector<Buffer> results;
  ASSERT_TRUE(reader
                  ->ReadComponents({"list.3", "list.7", "list.11"}, &pool,
                                   &trace, &results)
                  .ok());
  EXPECT_EQ(results.size(), 3u);
  EXPECT_EQ(trace.depth(), depth_after_open + 1);  // One round for all three.
}

TEST_F(ComponentFileTest, CachedComponentsAreFree) {
  ComponentFileWriter writer(IndexType::kTrie, "u");
  Random rng(3);
  Buffer data(300 << 10);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  ASSERT_TRUE(writer.AddComponent("big", Slice(data)).ok());
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  ASSERT_TRUE(store_.Put("k", Slice(file)).ok());

  auto reader = ComponentFileReader::Open(&store_, "k", nullptr).MoveValue();
  Buffer payload;
  ASSERT_TRUE(reader->ReadComponent("big", nullptr, nullptr, &payload).ok());
  uint64_t gets = store_.stats().gets.load();
  ASSERT_TRUE(reader->ReadComponent("big", nullptr, nullptr, &payload).ok());
  EXPECT_EQ(store_.stats().gets.load(), gets);  // Second read cached.
}

TEST_F(ComponentFileTest, MissingComponentIsNotFound) {
  ComponentFileWriter writer(IndexType::kTrie, "u");
  ASSERT_TRUE(writer.AddComponent("a", Slice(Bytes("x"))).ok());
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  ASSERT_TRUE(store_.Put("k", Slice(file)).ok());
  auto reader = ComponentFileReader::Open(&store_, "k", nullptr).MoveValue();
  Buffer payload;
  EXPECT_TRUE(
      reader->ReadComponent("nope", nullptr, nullptr, &payload).IsNotFound());
}

TEST_F(ComponentFileTest, CorruptFileRejected) {
  Buffer junk(64, 0x11);
  ASSERT_TRUE(store_.Put("junk", Slice(junk)).ok());
  EXPECT_TRUE(
      ComponentFileReader::Open(&store_, "junk", nullptr).status()
          .IsCorruption());
}

TEST_F(ComponentFileTest, TinyTailReadStillWorks) {
  // Force the directory to exceed the tail read so the two-step open path
  // runs.
  ComponentFileWriter writer(IndexType::kTrie, "u");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(writer
                    .AddComponent("component-with-a-long-name-" +
                                      std::to_string(i),
                                  Slice(Bytes("payload" + std::to_string(i))))
                    .ok());
  }
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  ASSERT_TRUE(store_.Put("k", Slice(file)).ok());
  auto reader_r =
      ComponentFileReader::Open(&store_, "k", nullptr, /*tail_bytes=*/64);
  ASSERT_TRUE(reader_r.ok()) << reader_r.status().ToString();
  Buffer payload;
  ASSERT_TRUE(reader_r.value()
                  ->ReadComponent("component-with-a-long-name-137", nullptr,
                                  nullptr, &payload)
                  .ok());
  EXPECT_EQ(payload, Bytes("payload137"));
}

TEST_F(ComponentFileTest, BitFlipInPayloadIsCorruption) {
  // A single flipped bit anywhere in a component payload must surface as
  // Corruption — at open for tail-cached components, at read for fetched
  // ones — never as silently wrong data.
  ComponentFileWriter writer(IndexType::kTrie, "u");
  Random rng(11);
  Buffer bulk(400 << 10);  // Incompressible, larger than the 256KB tail.
  for (auto& b : bulk) b = static_cast<uint8_t>(rng.Next());
  ASSERT_TRUE(writer.AddComponent("bulk", Slice(bulk)).ok());
  ASSERT_TRUE(writer.AddComponent("root", Slice(Bytes("root payload"))).ok());
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());

  // Flip a bit early in the file: inside `bulk`, outside the tail read.
  Buffer corrupt = file;
  corrupt[100] ^= 0x01;
  ASSERT_TRUE(store_.Put("k", Slice(corrupt)).ok());
  auto reader_r = ComponentFileReader::Open(&store_, "k", nullptr);
  ASSERT_TRUE(reader_r.ok()) << reader_r.status().ToString();
  Buffer payload;
  // `root` is tail-cached and intact.
  ASSERT_TRUE(
      reader_r.value()->ReadComponent("root", nullptr, nullptr, &payload).ok());
  // `bulk` is fetched — and fails its checksum.
  EXPECT_TRUE(reader_r.value()
                  ->ReadComponent("bulk", nullptr, nullptr, &payload)
                  .IsCorruption());

  // Flip a bit in the tail instead: open itself fails (either the flipped
  // byte hits a tail-cached payload or the directory).
  corrupt = file;
  corrupt[file.size() - 40] ^= 0x01;
  ASSERT_TRUE(store_.Put("k2", Slice(corrupt)).ok());
  EXPECT_TRUE(ComponentFileReader::Open(&store_, "k2", nullptr)
                  .status()
                  .IsCorruption());
}

TEST_F(ComponentFileTest, TruncatedFileIsRejected) {
  ComponentFileWriter writer(IndexType::kTrie, "u");
  ASSERT_TRUE(writer.AddComponent("a", Slice(Bytes("payload-a"))).ok());
  ASSERT_TRUE(writer.AddComponent("b", Slice(Bytes("payload-b"))).ok());
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  // Every truncation point must fail Open cleanly — bad magic, short
  // directory, or checksum mismatch — never parse garbage.
  for (size_t keep : {file.size() - 1, file.size() - 5, file.size() / 2,
                      size_t{21}, size_t{1}}) {
    Buffer cut(file.begin(), file.begin() + keep);
    ASSERT_TRUE(store_.Put("t", Slice(cut)).ok());
    EXPECT_FALSE(ComponentFileReader::Open(&store_, "t", nullptr).ok())
        << "kept " << keep << " of " << file.size();
  }
}

TEST_F(ComponentFileTest, DirectoryChecksumCoversEntries) {
  // Corrupting the directory region itself (not a payload) is detected by
  // the directory checksum before any entry is trusted.
  ComponentFileWriter writer(IndexType::kFm, "body");
  ASSERT_TRUE(writer.AddComponent("x", Slice(Bytes("data"))).ok());
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  // The directory sits just before the 16-byte checksum+length footer and
  // the 4-byte magic; flip a byte 22 from the end (inside the directory).
  Buffer corrupt = file;
  corrupt[file.size() - 22] ^= 0xFF;
  ASSERT_TRUE(store_.Put("k", Slice(corrupt)).ok());
  EXPECT_TRUE(ComponentFileReader::Open(&store_, "k", nullptr)
                  .status()
                  .IsCorruption());
}

TEST_F(ComponentFileTest, EmptyIndexFileRoundTrips) {
  ComponentFileWriter writer(IndexType::kFm, "body");
  Buffer file;
  ASSERT_TRUE(writer.Finish(&file).ok());
  ASSERT_TRUE(store_.Put("k", Slice(file)).ok());
  auto reader = ComponentFileReader::Open(&store_, "k", nullptr).MoveValue();
  EXPECT_TRUE(reader->ComponentNames().empty());
}

}  // namespace
}  // namespace rottnest::index
