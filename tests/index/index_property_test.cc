// Property-style parameterized sweeps over index configurations: every
// (block size, sample rate) FM configuration and every (nlist, m) IVF-PQ
// configuration must preserve correctness; tries must survive adversarial
// key distributions.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "index/fm/fm_index.h"
#include "index/ivfpq/ivfpq_index.h"
#include "index/trie/trie_index.h"
#include "objectstore/object_store.h"

namespace rottnest::index {
namespace {

using objectstore::InMemoryObjectStore;

format::PageTable OnePageTable() {
  format::FileMeta meta;
  meta.schema.columns.push_back({"c", format::PhysicalType::kByteArray, 0});
  format::RowGroupMeta rg;
  format::ColumnChunkMeta cc;
  format::PageMeta pm;
  pm.offset = 0;
  pm.size = 100;
  pm.num_values = 100;
  pm.first_row = 0;
  cc.pages.push_back(pm);
  rg.columns.push_back(cc);
  rg.num_rows = 100;
  meta.row_groups.push_back(rg);
  format::PageTable t;
  t.AddFile("f", meta, 0);
  return t;
}

uint64_t NaiveCount(const std::string& text, const std::string& pattern) {
  uint64_t count = 0;
  size_t pos = 0;
  while ((pos = text.find(pattern, pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  return count;
}

// -- FM configuration sweep ---------------------------------------------------

class FmConfigTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(FmConfigTest, CountCorrectUnderAllConfigs) {
  auto [block_size, sample_rate] = GetParam();
  FmOptions options;
  options.block_size = block_size;
  options.sample_rate = sample_rate;

  Random rng(block_size * 131 + sample_rate);
  std::string text;
  for (int i = 0; i < 20000; ++i) {
    text.push_back('a' + static_cast<char>(rng.Uniform(5)));
  }

  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ThreadPool pool(2);
  FmIndexBuilder builder("c", options);
  builder.AddPage(Slice(text));
  Buffer file;
  ASSERT_TRUE(builder.Finish(OnePageTable(), &file).ok());
  ASSERT_TRUE(store.Put("idx", Slice(file)).ok());
  auto reader = ComponentFileReader::Open(&store, "idx", nullptr).MoveValue();

  std::string all = text + '\x01';
  for (int trial = 0; trial < 8; ++trial) {
    size_t len = 1 + rng.Uniform(5);
    size_t pos = rng.Uniform(text.size() - len);
    std::string pattern = text.substr(pos, len);
    uint64_t count;
    ASSERT_TRUE(
        FmCount(reader.get(), &pool, nullptr, Slice(pattern), &count).ok());
    EXPECT_EQ(count, NaiveCount(all, pattern))
        << "bs=" << block_size << " k=" << sample_rate << " pat=" << pattern;
  }
  // Locating must also succeed (exercises mark/ssa under each config).
  std::vector<format::PageId> pages;
  std::string pattern = text.substr(100, 3);
  ASSERT_TRUE(FmLocatePages(reader.get(), &pool, nullptr, Slice(pattern), 20,
                            &pages)
                  .ok());
  EXPECT_EQ(pages, (std::vector<format::PageId>{0}));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FmConfigTest,
    ::testing::Combine(::testing::Values(256u, 1024u, 8192u, 65536u),
                       ::testing::Values(2u, 8u, 32u)));

// -- IVF-PQ configuration sweep -----------------------------------------------

class IvfConfigTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(IvfConfigTest, ExactVectorAlwaysRetrievableWithFullProbe) {
  auto [nlist, m] = GetParam();
  constexpr uint32_t kDim = 16;
  IvfPqOptions options;
  options.nlist = nlist;
  options.num_subquantizers = m;

  Random rng(nlist * 7 + m);
  constexpr size_t kN = 600;
  std::vector<float> vectors(kN * kDim);
  for (auto& v : vectors) v = static_cast<float>(rng.NextGaussian() * 5);

  IvfPqIndexBuilder builder("v", kDim, options);
  for (size_t i = 0; i < kN; ++i) {
    builder.Add(vectors.data() + i * kDim, static_cast<format::PageId>(i / 100),
                static_cast<uint32_t>(i % 100));
  }
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ThreadPool pool(2);
  Buffer file;
  ASSERT_TRUE(builder.Finish(OnePageTable(), &file).ok());
  ASSERT_TRUE(store.Put("idx", Slice(file)).ok());
  auto reader = ComponentFileReader::Open(&store, "idx", nullptr).MoveValue();

  // Query with stored vectors: full probing must surface the exact row.
  int found = 0;
  for (size_t q = 0; q < 20; ++q) {
    size_t pick = q * 29 % kN;
    std::vector<VectorCandidate> got;
    ASSERT_TRUE(IvfPqSearch(reader.get(), &pool, nullptr,
                            vectors.data() + pick * kDim, kDim, nlist, kN,
                            &got)
                    .ok());
    for (const auto& c : got) {
      if (c.page == pick / 100 && c.row_in_page == pick % 100) {
        ++found;
        break;
      }
    }
  }
  EXPECT_EQ(found, 20) << "nlist=" << nlist << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Configs, IvfConfigTest,
                         ::testing::Combine(::testing::Values(1u, 8u, 64u),
                                            ::testing::Values(2u, 4u, 16u)));

// -- Trie adversarial keys ----------------------------------------------------

TEST(TrieAdversarialTest, SharedLongPrefixes) {
  // Keys differing only in the last few bits force maximal truncation
  // depth (LCP up to 124 bits).
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ThreadPool pool(2);
  TrieIndexBuilder builder("u");
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    Key128 k{0x0123456789abcdefULL, 0xfedcba9876543200ULL + i};
    builder.Add(k, static_cast<format::PageId>(i % 7));
  }
  Buffer file;
  ASSERT_TRUE(builder.Finish(format::PageTable{}, &file).ok());
  ASSERT_TRUE(store.Put("idx", Slice(file)).ok());
  auto reader = ComponentFileReader::Open(&store, "idx", nullptr).MoveValue();
  for (int i = 0; i < kN; i += 37) {
    Key128 k{0x0123456789abcdefULL, 0xfedcba9876543200ULL + i};
    std::vector<format::PageId> pages;
    ASSERT_TRUE(TrieQuery(reader.get(), &pool, nullptr, k, &pages).ok());
    ASSERT_EQ(pages.size(), 1u) << i;
    EXPECT_EQ(pages[0], static_cast<format::PageId>(i % 7));
  }
}

TEST(TrieAdversarialTest, SkewedFirstByteDistribution) {
  // All keys start with the same byte: the root LUT routes them to a
  // narrow band of leaves; routing must still work.
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ThreadPool pool(2);
  TrieIndexBuilder builder("u");
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    Key128 k{0xAA00000000000000ULL | Mix64(i) >> 16, Mix64(i ^ 0x9)};
    builder.Add(k, static_cast<format::PageId>(i % 3));
  }
  Buffer file;
  ASSERT_TRUE(builder.Finish(format::PageTable{}, &file).ok());
  ASSERT_TRUE(store.Put("idx", Slice(file)).ok());
  auto reader = ComponentFileReader::Open(&store, "idx", nullptr).MoveValue();
  for (int i = 0; i < kN; i += 997) {
    Key128 k{0xAA00000000000000ULL | Mix64(i) >> 16, Mix64(i ^ 0x9)};
    std::vector<format::PageId> pages;
    ASSERT_TRUE(TrieQuery(reader.get(), &pool, nullptr, k, &pages).ok());
    ASSERT_FALSE(pages.empty()) << i;
    EXPECT_EQ(pages[0], static_cast<format::PageId>(i % 3));
  }
}

TEST(TrieAdversarialTest, IdenticalKeysManyPages) {
  // One key in hundreds of pages: postings list must survive leaf
  // serialization and truncation to 128 bits (single key -> bits = 9).
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ThreadPool pool(2);
  TrieIndexBuilder builder("u");
  Key128 k{42, 43};
  for (int p = 0; p < 500; ++p) {
    builder.Add(k, static_cast<format::PageId>(p));
  }
  Buffer file;
  ASSERT_TRUE(builder.Finish(format::PageTable{}, &file).ok());
  ASSERT_TRUE(store.Put("idx", Slice(file)).ok());
  auto reader = ComponentFileReader::Open(&store, "idx", nullptr).MoveValue();
  std::vector<format::PageId> pages;
  ASSERT_TRUE(TrieQuery(reader.get(), &pool, nullptr, k, &pages).ok());
  EXPECT_EQ(pages.size(), 500u);
}

TEST(FmMergeAssociativityTest, ThreeWayMergeOrderIndependentCounts) {
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ThreadPool pool(2);
  FmOptions options;
  options.block_size = 512;
  options.sample_rate = 4;

  std::vector<std::string> texts = {"gattaca gattaca", "cacatag tagtag",
                                    "attagatta gatta"};
  for (size_t i = 0; i < texts.size(); ++i) {
    FmIndexBuilder builder("c", options);
    builder.AddPage(Slice(texts[i]));
    Buffer file;
    ASSERT_TRUE(builder.Finish(OnePageTable(), &file).ok());
    ASSERT_TRUE(store.Put("idx/" + std::to_string(i), Slice(file)).ok());
  }
  auto r0 = ComponentFileReader::Open(&store, "idx/0", nullptr).MoveValue();
  auto r1 = ComponentFileReader::Open(&store, "idx/1", nullptr).MoveValue();
  auto r2 = ComponentFileReader::Open(&store, "idx/2", nullptr).MoveValue();

  // ((0+1)+2) vs (0+(1+2)): occurrence counts must agree.
  Buffer m01, m01_2;
  ASSERT_TRUE(FmMerge({r0.get(), r1.get()}, &pool, nullptr, "c", options,
                      &m01)
                  .ok());
  ASSERT_TRUE(store.Put("idx/m01", Slice(m01)).ok());
  auto rm01 = ComponentFileReader::Open(&store, "idx/m01", nullptr).MoveValue();
  ASSERT_TRUE(FmMerge({rm01.get(), r2.get()}, &pool, nullptr, "c", options,
                      &m01_2)
                  .ok());
  ASSERT_TRUE(store.Put("idx/m01_2", Slice(m01_2)).ok());

  Buffer m12, m0_12;
  ASSERT_TRUE(FmMerge({r1.get(), r2.get()}, &pool, nullptr, "c", options,
                      &m12)
                  .ok());
  ASSERT_TRUE(store.Put("idx/m12", Slice(m12)).ok());
  auto rm12 = ComponentFileReader::Open(&store, "idx/m12", nullptr).MoveValue();
  ASSERT_TRUE(FmMerge({r0.get(), rm12.get()}, &pool, nullptr, "c", options,
                      &m0_12)
                  .ok());
  ASSERT_TRUE(store.Put("idx/m0_12", Slice(m0_12)).ok());

  auto ra =
      ComponentFileReader::Open(&store, "idx/m01_2", nullptr).MoveValue();
  auto rb =
      ComponentFileReader::Open(&store, "idx/m0_12", nullptr).MoveValue();
  for (const std::string& pattern :
       {std::string("gatta"), std::string("tag"), std::string("ca"),
        std::string("atta")}) {
    uint64_t ca, cb;
    ASSERT_TRUE(FmCount(ra.get(), &pool, nullptr, Slice(pattern), &ca).ok());
    ASSERT_TRUE(FmCount(rb.get(), &pool, nullptr, Slice(pattern), &cb).ok());
    EXPECT_EQ(ca, cb) << pattern;
    uint64_t expect = 0;
    for (const std::string& t : texts) {
      expect += NaiveCount(t + '\x01', pattern);
    }
    EXPECT_EQ(ca, expect) << pattern;
  }
}

TEST(IvfMergeTest, ThreeWayMergeKeepsAllVectors) {
  constexpr uint32_t kDim = 8;
  SimulatedClock clock;
  InMemoryObjectStore store(&clock);
  ThreadPool pool(2);
  IvfPqOptions options;
  options.nlist = 4;
  options.num_subquantizers = 2;

  std::vector<std::unique_ptr<ComponentFileReader>> readers;
  std::vector<ComponentFileReader*> raw;
  size_t total = 0;
  for (int part = 0; part < 3; ++part) {
    Random rng(part + 1);
    IvfPqIndexBuilder builder("v", kDim, options);
    size_t n = 100 + part * 50;
    total += n;
    for (size_t i = 0; i < n; ++i) {
      std::vector<float> v(kDim);
      for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
      builder.Add(v.data(), static_cast<format::PageId>(i / 100),
                  static_cast<uint32_t>(i % 100));
    }
    Buffer file;
    ASSERT_TRUE(builder.Finish(OnePageTable(), &file).ok());
    std::string key = "idx/" + std::to_string(part);
    ASSERT_TRUE(store.Put(key, Slice(file)).ok());
    auto r = ComponentFileReader::Open(&store, key, nullptr).MoveValue();
    raw.push_back(r.get());
    readers.push_back(std::move(r));
  }
  Buffer merged;
  ASSERT_TRUE(IvfPqMerge(raw, &pool, nullptr, "v", &merged).ok());
  ASSERT_TRUE(store.Put("idx/m", Slice(merged)).ok());
  auto rm = ComponentFileReader::Open(&store, "idx/m", nullptr).MoveValue();

  // Full probe with max candidates returns every stored vector.
  std::vector<float> q(kDim, 0.0f);
  std::vector<VectorCandidate> got;
  ASSERT_TRUE(
      IvfPqSearch(rm.get(), &pool, nullptr, q.data(), kDim, 4, 10000, &got)
          .ok());
  EXPECT_EQ(got.size(), total);
}

}  // namespace
}  // namespace rottnest::index
