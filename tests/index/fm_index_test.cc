#include "index/fm/fm_index.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/random.h"
#include "index/fm/suffix_array.h"
#include "objectstore/object_store.h"

namespace rottnest::index {
namespace {

using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;

// -- Suffix array / BWT primitives -------------------------------------------

std::vector<int64_t> NaiveSuffixArray(const std::string& text) {
  std::vector<int64_t> sa(text.size());
  for (size_t i = 0; i < sa.size(); ++i) sa[i] = static_cast<int64_t>(i);
  std::sort(sa.begin(), sa.end(), [&](int64_t a, int64_t b) {
    return text.compare(a, std::string::npos, text, b, std::string::npos) < 0;
  });
  return sa;
}

Buffer ToBuffer(const std::string& s) { return Buffer(s.begin(), s.end()); }

TEST(SuffixArrayTest, MatchesNaiveOnClassicStrings) {
  for (std::string base :
       {std::string("banana"), std::string("mississippi"),
        std::string("abracadabra"), std::string("aaaaaaa"),
        std::string("abcabcabc"), std::string("z"),
        std::string("the quick brown fox jumps over the lazy dog")}) {
    std::string text = base + '\0';
    auto sa = BuildSuffixArray(Slice(text));
    ASSERT_TRUE(sa.ok()) << base;
    EXPECT_EQ(sa.value(), NaiveSuffixArray(text)) << base;
  }
}

TEST(SuffixArrayTest, MatchesNaiveOnRandomStrings) {
  Random rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    size_t len = 1 + rng.Uniform(500);
    std::string text;
    int alphabet = 2 + static_cast<int>(rng.Uniform(25));
    for (size_t i = 0; i < len; ++i) {
      text.push_back('a' + static_cast<char>(rng.Uniform(alphabet)));
    }
    text.push_back('\0');
    auto sa = BuildSuffixArray(Slice(text));
    ASSERT_TRUE(sa.ok());
    EXPECT_EQ(sa.value(), NaiveSuffixArray(text)) << "trial " << trial;
  }
}

TEST(SuffixArrayTest, RejectsBadSentinels) {
  std::string no_sentinel = "abc";
  EXPECT_TRUE(BuildSuffixArray(Slice(no_sentinel)).status()
                  .IsInvalidArgument());
  std::string embedded = std::string("a\0b", 3) + '\0';
  EXPECT_TRUE(BuildSuffixArray(Slice(embedded)).status().IsInvalidArgument());
  std::string empty;
  EXPECT_TRUE(BuildSuffixArray(Slice(empty)).status().IsInvalidArgument());
}

TEST(BwtTest, RoundTripThroughInversion) {
  Random rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::string text;
    for (size_t i = 0; i < 200 + rng.Uniform(800); ++i) {
      text.push_back('a' + static_cast<char>(rng.Uniform(4)));
    }
    text.push_back('\0');
    auto sa = BuildSuffixArray(Slice(text)).MoveValue();
    Buffer bwt = BwtFromSuffixArray(Slice(text), sa);
    auto inverted = InvertBwt(Slice(bwt));
    ASSERT_TRUE(inverted.ok()) << inverted.status().ToString();
    EXPECT_EQ(inverted.value(), ToBuffer(text));
  }
}

// -- FM index -----------------------------------------------------------------

// Counts occurrences of `pattern` in `text` by brute force.
uint64_t NaiveCount(const std::string& text, const std::string& pattern) {
  uint64_t count = 0;
  size_t pos = 0;
  while ((pos = text.find(pattern, pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  return count;
}

class FmIndexTest : public ::testing::Test {
 protected:
  SimulatedClock clock_;
  InMemoryObjectStore store_{&clock_};
  ThreadPool pool_{4};

  // Builds an index over `pages` (vector of page texts) and uploads it.
  void BuildIndex(const std::string& key,
                  const std::vector<std::string>& pages,
                  FmOptions options = SmallOptions()) {
    FmIndexBuilder builder("body", options);
    for (const std::string& p : pages) builder.AddPage(Slice(p));
    Buffer file;
    ASSERT_TRUE(builder.Finish(MakePageTable(pages.size()), &file).ok());
    ASSERT_TRUE(store_.Put(key, Slice(file)).ok());
  }

  static FmOptions SmallOptions() {
    FmOptions o;
    o.block_size = 1024;  // Many blocks even for small test texts.
    o.sample_rate = 8;
    return o;
  }

  static format::PageTable MakePageTable(size_t pages) {
    format::FileMeta meta;
    meta.schema.columns.push_back({"body", format::PhysicalType::kByteArray, 0});
    format::RowGroupMeta rg;
    format::ColumnChunkMeta cc;
    for (size_t p = 0; p < pages; ++p) {
      format::PageMeta pm;
      pm.offset = p * 1000;
      pm.size = 1000;
      pm.num_values = 5;
      pm.first_row = p * 5;
      cc.pages.push_back(pm);
    }
    rg.columns.push_back(cc);
    rg.num_rows = pages * 5;
    meta.row_groups.push_back(rg);
    format::PageTable table;
    table.AddFile("data/f.lake", meta, 0);
    return table;
  }
};

TEST_F(FmIndexTest, CountMatchesNaive) {
  std::string page0 = "the quick brown fox jumps over the lazy dog";
  std::string page1 = "pack my box with five dozen liquor jugs";
  std::string page2 = "the five boxing wizards jump quickly";
  BuildIndex("idx/f.index", {page0, page1, page2});
  auto reader =
      ComponentFileReader::Open(&store_, "idx/f.index", nullptr).MoveValue();

  std::string all = page0 + "\x01" + page1 + "\x01" + page2 + "\x01";
  for (const std::string& pattern :
       {std::string("the"), std::string("qu"), std::string("five"),
        std::string("o"), std::string("jump"), std::string("zebra"),
        std::string("ck "), std::string("dog")}) {
    uint64_t count;
    ASSERT_TRUE(
        FmCount(reader.get(), &pool_, nullptr, Slice(pattern), &count).ok())
        << pattern;
    EXPECT_EQ(count, NaiveCount(all, pattern)) << pattern;
  }
}

TEST_F(FmIndexTest, CountOnZipfianText) {
  Random rng(31);
  static const char* words[] = {"error",  "timeout", "pod",    "disk",
                                "node",   "latency", "retry",  "socket"};
  std::vector<std::string> pages;
  std::string all;
  for (int p = 0; p < 6; ++p) {
    std::string text;
    for (int w = 0; w < 300; ++w) {
      text += words[rng.NextZipf(8, 1.2)];
      text.push_back(' ');
    }
    all += text;
    all.push_back('\x01');
    pages.push_back(std::move(text));
  }
  BuildIndex("idx/z.index", pages);
  auto reader =
      ComponentFileReader::Open(&store_, "idx/z.index", nullptr).MoveValue();
  for (const std::string& pattern :
       {std::string("error"), std::string("timeout"), std::string("ry so"),
        std::string(" pod "), std::string("disk disk")}) {
    uint64_t count;
    ASSERT_TRUE(
        FmCount(reader.get(), &pool_, nullptr, Slice(pattern), &count).ok());
    EXPECT_EQ(count, NaiveCount(all, pattern)) << pattern;
  }
}

TEST_F(FmIndexTest, LocateFindsCorrectPages) {
  std::vector<std::string> pages = {
      "alpha beta gamma", "delta epsilon zeta", "eta theta iota",
      "kappa lambda mu alpha"};
  BuildIndex("idx/f.index", pages);
  auto reader =
      ComponentFileReader::Open(&store_, "idx/f.index", nullptr).MoveValue();

  std::vector<format::PageId> got;
  ASSERT_TRUE(FmLocatePages(reader.get(), &pool_, nullptr,
                            Slice(std::string("alpha")), 100, &got)
                  .ok());
  EXPECT_EQ(got, (std::vector<format::PageId>{0, 3}));

  ASSERT_TRUE(FmLocatePages(reader.get(), &pool_, nullptr,
                            Slice(std::string("epsilon")), 100, &got)
                  .ok());
  EXPECT_EQ(got, (std::vector<format::PageId>{1}));

  ASSERT_TRUE(FmLocatePages(reader.get(), &pool_, nullptr,
                            Slice(std::string("nomatch")), 100, &got)
                  .ok());
  EXPECT_TRUE(got.empty());
}

TEST_F(FmIndexTest, LocateRespectsMaxLocations) {
  std::vector<std::string> pages;
  for (int p = 0; p < 8; ++p) {
    pages.push_back("needle haystack needle straw needle");
  }
  BuildIndex("idx/f.index", pages);
  auto reader =
      ComponentFileReader::Open(&store_, "idx/f.index", nullptr).MoveValue();
  std::vector<format::PageId> got;
  ASSERT_TRUE(FmLocatePages(reader.get(), &pool_, nullptr,
                            Slice(std::string("needle")), 3, &got)
                  .ok());
  // Only 3 occurrences located -> at most 3 pages.
  EXPECT_LE(got.size(), 3u);
  EXPECT_FALSE(got.empty());
}

TEST_F(FmIndexTest, ReservedBytesInPatternRejected) {
  BuildIndex("idx/f.index", {"some text"});
  auto reader =
      ComponentFileReader::Open(&store_, "idx/f.index", nullptr).MoveValue();
  uint64_t count;
  std::string bad1("a\x00b", 3);
  std::string bad2("a\x01b", 3);
  EXPECT_TRUE(FmCount(reader.get(), &pool_, nullptr, Slice(bad1), &count)
                  .IsInvalidArgument());
  EXPECT_TRUE(FmCount(reader.get(), &pool_, nullptr, Slice(bad2), &count)
                  .IsInvalidArgument());
  std::string empty;
  EXPECT_TRUE(FmCount(reader.get(), &pool_, nullptr, Slice(empty), &count)
                  .IsInvalidArgument());
}

TEST_F(FmIndexTest, PatternsNeverMatchAcrossPages) {
  // "endstart" spans page texts but must not match.
  BuildIndex("idx/f.index", {"prefix end", "start suffix"});
  auto reader =
      ComponentFileReader::Open(&store_, "idx/f.index", nullptr).MoveValue();
  uint64_t count;
  ASSERT_TRUE(FmCount(reader.get(), &pool_, nullptr,
                      Slice(std::string("endstart")), &count)
                  .ok());
  EXPECT_EQ(count, 0u);
  ASSERT_TRUE(FmCount(reader.get(), &pool_, nullptr,
                      Slice(std::string("end")), &count)
                  .ok());
  EXPECT_EQ(count, 1u);
}

TEST_F(FmIndexTest, SanitizedBytesStillIndexable) {
  std::string with_nul("log\x00line\x01more", 13);
  BuildIndex("idx/f.index", {with_nul});
  auto reader =
      ComponentFileReader::Open(&store_, "idx/f.index", nullptr).MoveValue();
  uint64_t count;
  // 0x00 and 0x01 were remapped to 0x02 at build; the sanitized pattern
  // matches.
  std::string pattern("g\x02l", 3);
  ASSERT_TRUE(
      FmCount(reader.get(), &pool_, nullptr, Slice(pattern), &count).ok());
  EXPECT_EQ(count, 1u);
}

TEST_F(FmIndexTest, MergeEqualsRebuildSemantics) {
  std::vector<std::string> pages_a = {"error in pod alpha",
                                      "disk pressure on node one"};
  std::vector<std::string> pages_b = {"error in pod beta",
                                      "latency spike zone error"};
  BuildIndex("idx/a.index", pages_a);
  BuildIndex("idx/b.index", pages_b);

  auto ra = ComponentFileReader::Open(&store_, "idx/a.index", nullptr)
                .MoveValue();
  auto rb = ComponentFileReader::Open(&store_, "idx/b.index", nullptr)
                .MoveValue();
  Buffer merged;
  ASSERT_TRUE(FmMerge({ra.get(), rb.get()}, &pool_, nullptr, "body",
                      SmallOptions(), &merged)
                  .ok());
  ASSERT_TRUE(store_.Put("idx/m.index", Slice(merged)).ok());
  auto rm = ComponentFileReader::Open(&store_, "idx/m.index", nullptr)
                .MoveValue();

  std::string all_a = pages_a[0] + "\x01" + pages_a[1] + "\x01";
  std::string all_b = pages_b[0] + "\x01" + pages_b[1] + "\x01";
  for (const std::string& pattern :
       {std::string("error"), std::string("pod"), std::string("disk"),
        std::string("zone"), std::string("missing-term"),
        std::string("e")}) {
    uint64_t count;
    ASSERT_TRUE(
        FmCount(rm.get(), &pool_, nullptr, Slice(pattern), &count).ok());
    EXPECT_EQ(count, NaiveCount(all_a, pattern) + NaiveCount(all_b, pattern))
        << pattern;
  }

  // Locate across the merge: "error" is on a-page 0, b-pages 0 and 1 ->
  // merged page ids 0, 2, 3.
  std::vector<format::PageId> got;
  ASSERT_TRUE(FmLocatePages(rm.get(), &pool_, nullptr,
                            Slice(std::string("error")), 100, &got)
                  .ok());
  EXPECT_EQ(got, (std::vector<format::PageId>{0, 2, 3}));
}

TEST_F(FmIndexTest, MergeOfMergesStillCorrect) {
  BuildIndex("idx/a.index", {"one red apple"});
  BuildIndex("idx/b.index", {"two red pears"});
  BuildIndex("idx/c.index", {"red red robins"});
  auto ra = ComponentFileReader::Open(&store_, "idx/a.index", nullptr)
                .MoveValue();
  auto rb = ComponentFileReader::Open(&store_, "idx/b.index", nullptr)
                .MoveValue();
  Buffer m1;
  ASSERT_TRUE(FmMerge({ra.get(), rb.get()}, &pool_, nullptr, "body",
                      SmallOptions(), &m1)
                  .ok());
  ASSERT_TRUE(store_.Put("idx/m1.index", Slice(m1)).ok());
  auto rm1 = ComponentFileReader::Open(&store_, "idx/m1.index", nullptr)
                 .MoveValue();
  auto rc = ComponentFileReader::Open(&store_, "idx/c.index", nullptr)
                .MoveValue();
  Buffer m2;
  ASSERT_TRUE(FmMerge({rm1.get(), rc.get()}, &pool_, nullptr, "body",
                      SmallOptions(), &m2)
                  .ok());
  ASSERT_TRUE(store_.Put("idx/m2.index", Slice(m2)).ok());
  auto rm2 = ComponentFileReader::Open(&store_, "idx/m2.index", nullptr)
                 .MoveValue();
  uint64_t count;
  ASSERT_TRUE(FmCount(rm2.get(), &pool_, nullptr, Slice(std::string("red")),
                      &count)
                  .ok());
  EXPECT_EQ(count, 4u);
  std::vector<format::PageId> got;
  ASSERT_TRUE(FmLocatePages(rm2.get(), &pool_, nullptr,
                            Slice(std::string("robins")), 100, &got)
                  .ok());
  EXPECT_EQ(got, (std::vector<format::PageId>{2}));
}

TEST_F(FmIndexTest, LargeRandomTextCountFuzz) {
  Random rng(1234);
  std::string text;
  for (int i = 0; i < 60000; ++i) {
    text.push_back('a' + static_cast<char>(rng.Uniform(4)));
  }
  BuildIndex("idx/big.index", {text});
  auto reader =
      ComponentFileReader::Open(&store_, "idx/big.index", nullptr).MoveValue();
  std::string all = text + "\x01";
  for (int trial = 0; trial < 20; ++trial) {
    size_t len = 1 + rng.Uniform(6);
    size_t pos = rng.Uniform(text.size() - len);
    std::string pattern = text.substr(pos, len);
    uint64_t count;
    ASSERT_TRUE(
        FmCount(reader.get(), &pool_, nullptr, Slice(pattern), &count).ok());
    EXPECT_EQ(count, NaiveCount(all, pattern)) << pattern;
  }
}

TEST_F(FmIndexTest, BackwardSearchDepthScalesWithPattern) {
  Random rng(9);
  std::string text;
  for (int i = 0; i < 200000; ++i) {
    text.push_back('a' + static_cast<char>(rng.Uniform(26)));
  }
  FmOptions options;
  options.block_size = 4096;
  options.sample_rate = 8;
  BuildIndex("idx/d.index", {text}, options);

  IoTrace trace;
  auto reader =
      ComponentFileReader::Open(&store_, "idx/d.index", &trace).MoveValue();
  uint64_t count;
  std::string pattern = text.substr(1000, 6);
  ASSERT_TRUE(
      FmCount(reader.get(), &pool_, &trace, Slice(pattern), &count).ok());
  // Depth is bounded by ~1 (open) + 1 (meta, cached) + pattern length
  // rounds; crucially NOT by text size.
  EXPECT_LE(trace.depth(), 2 + pattern.size());
}

}  // namespace
}  // namespace rottnest::index
