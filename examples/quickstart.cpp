// Quickstart: the whole Rottnest lifecycle in one file.
//
//   1. create a data-lake table and append rows
//   2. build secondary indices with `index`
//   3. run UUID / substring / vector searches (verified in situ)
//   4. mutate the lake (delete rows, compact files) and watch searches
//      stay consistent without re-indexing
//   5. `compact` + `vacuum` the index itself
//
// Everything runs against an in-memory object store; swap in
// LocalDiskObjectStore (see log_analytics.cpp) to persist.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "common/hash.h"
#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/object_store.h"

using namespace rottnest;

namespace {

constexpr uint32_t kDim = 8;

format::Schema MakeSchema() {
  format::Schema s;
  s.columns.push_back({"uuid", format::PhysicalType::kFixedLenByteArray, 16});
  s.columns.push_back({"message", format::PhysicalType::kByteArray, 0});
  s.columns.push_back(
      {"embedding", format::PhysicalType::kFixedLenByteArray, kDim * 4});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0x77);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

std::vector<float> EmbeddingFor(uint64_t id) {
  Random rng(id);
  std::vector<float> v(kDim);
  for (uint32_t d = 0; d < kDim; ++d) {
    v[d] = static_cast<float>((id % 4 == d % 4 ? 10.0 : 0.0) +
                              rng.NextGaussian() * 0.1);
  }
  return v;
}

format::RowBatch MakeBatch(uint64_t first_id, size_t rows) {
  format::RowBatch b;
  b.schema = MakeSchema();
  format::FlatFixed uuids;
  uuids.elem_size = 16;
  format::ColumnVector::Strings messages;
  format::FlatFixed embeddings;
  embeddings.elem_size = kDim * 4;
  for (size_t i = 0; i < rows; ++i) {
    uint64_t id = first_id + i;
    std::string u = UuidFor(id);
    uuids.Append(Slice(u));
    messages.push_back("event " + std::to_string(id) +
                       (id % 10 == 0 ? " CRITICAL failure in shard-7"
                                     : " routine heartbeat ok"));
    std::vector<float> e = EmbeddingFor(id);
    embeddings.Append(
        Slice(reinterpret_cast<const uint8_t*>(e.data()), kDim * 4));
  }
  b.columns.emplace_back(std::move(uuids));
  b.columns.emplace_back(std::move(messages));
  b.columns.emplace_back(std::move(embeddings));
  return b;
}

Status StatusOf(const Status& s) { return s; }
template <typename T>
Status StatusOf(const Result<T>& r) {
  return r.status();
}

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto&& _r = (expr);                                               \
    if (!_r.ok()) {                                                 \
      std::printf("FAILED: %s -> %s\n", #expr,                      \
                  StatusOf(_r).ToString().c_str());                 \
      return 1;                                                     \
    }                                                               \
  } while (0)

}  // namespace

int main() {
  SimulatedClock clock;
  objectstore::InMemoryObjectStore store(&clock);

  // 1. Create the lake table and land two files of data.
  auto table_r = lake::Table::Create(&store, "lake/events", MakeSchema());
  if (!table_r.ok()) {
    std::printf("create failed: %s\n", table_r.status().ToString().c_str());
    return 1;
  }
  auto table = std::move(table_r).value();
  CHECK_OK(table->Append(MakeBatch(0, 1000)));
  CHECK_OK(table->Append(MakeBatch(1000, 1000)));
  std::printf("created lake table with %llu rows in %zu files\n",
              (unsigned long long)table->GetSnapshot().value().TotalRows(),
              table->GetSnapshot().value().files.size());

  // 2. Attach Rottnest and index three columns.
  core::RottnestOptions options;
  options.index_dir = "indexes/events";
  options.ivfpq.nlist = 16;
  options.ivfpq.num_subquantizers = 4;
  core::Rottnest client(&store, table.get(), options);
  CHECK_OK(client.Index("uuid", index::IndexType::kTrie));
  CHECK_OK(client.Index("message", index::IndexType::kFm));
  CHECK_OK(client.Index("message", index::IndexType::kKeyword));
  CHECK_OK(client.Index("embedding", index::IndexType::kIvfPq));
  std::printf("built trie + fm + keyword + ivfpq indices\n");

  // 3a. UUID point lookup.
  std::string needle = UuidFor(1234);
  auto uuid_result = client.SearchUuid("uuid", Slice(needle), 5);
  CHECK_OK(uuid_result);
  std::printf("uuid lookup: %zu match(es), row %llu, scanned %zu files\n",
              uuid_result.value().matches.size(),
              (unsigned long long)uuid_result.value().matches[0].row,
              uuid_result.value().files_scanned);

  // 3b. Substring search.
  auto sub_result = client.SearchSubstring("message", "CRITICAL", 5);
  CHECK_OK(sub_result);
  std::printf("substring 'CRITICAL': %zu matches, e.g. \"%s\"\n",
              sub_result.value().matches.size(),
              sub_result.value().matches[0].value.c_str());

  // 3c. Keyword (boolean AND) search over the inverted index. Terms are
  // tokenized like the data, so case and the "-7" suffix don't matter.
  auto kw_result =
      client.SearchKeyword("message", {"Critical", "shard"}, /*k=*/5);
  CHECK_OK(kw_result);
  std::printf("keyword critical AND shard: %zu matches, e.g. \"%s\"\n",
              kw_result.value().matches.size(),
              kw_result.value().matches[0].value.c_str());

  // 3d. Vector search with in-situ refinement.
  std::vector<float> query = EmbeddingFor(42);
  core::SearchOptions vec_opts;
  vec_opts.params.vector = {/*nprobe=*/8, /*refine=*/32};
  auto vec_result = client.SearchVector("embedding", query.data(), kDim,
                                        /*k=*/3, vec_opts);
  CHECK_OK(vec_result);
  std::printf("vector search: top distance %.4f (expect ~0: exact vector)\n",
              vec_result.value().matches[0].distance);

  // 4. Mutate the lake: delete the needle row, then compact data files.
  CHECK_OK(table->DeleteWhere(
      "uuid", [&](const format::ColumnVector& col, size_t r) {
        return col.fixed().at(r) == Slice(needle);
      }));
  uuid_result = client.SearchUuid("uuid", Slice(needle), 5);
  CHECK_OK(uuid_result);
  std::printf("after delete: %zu match(es) (deletion vector applied)\n",
              uuid_result.value().matches.size());

  CHECK_OK(table->CompactFiles(UINT64_MAX));
  auto survivor = client.SearchUuid("uuid", Slice(UuidFor(77)), 5);
  CHECK_OK(survivor);
  std::printf("after lake compaction: row %llu still found "
              "(%zu files brute-scanned while unindexed)\n",
              (unsigned long long)survivor.value().matches[0].row,
              survivor.value().files_scanned);

  // Re-index the compacted file, then the scan disappears.
  CHECK_OK(client.Index("uuid", index::IndexType::kTrie));
  survivor = client.SearchUuid("uuid", Slice(UuidFor(77)), 5);
  CHECK_OK(survivor);
  std::printf("after re-index: files scanned = %zu\n",
              survivor.value().files_scanned);

  // 5. Index maintenance: compact index files, vacuum dead ones.
  CHECK_OK(client.Compact("uuid", index::IndexType::kTrie));
  clock.Advance(options.index_timeout_micros + 1);
  auto latest = table->GetSnapshot().value().version;
  auto vac = client.Vacuum(latest);
  CHECK_OK(vac);
  std::printf("vacuum: removed %zu metadata entries, deleted %zu objects\n",
              vac.value().metadata_entries_removed,
              vac.value().objects_deleted);

  CHECK_OK(client.CheckInvariants());
  std::printf("invariants hold. done.\n");
  return 0;
}
