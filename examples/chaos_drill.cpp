// Chaos drill: the quickstart lifecycle on a misbehaving object store.
//
//   1. wrap the store: InMemoryObjectStore <- FaultInjectingStore (seeded
//      transient 503s + ambiguous writes) <- RetryingStore (capped backoff
//      over simulated time)
//   2. run append -> index -> search -> compact -> vacuum straight through
//      the faults and print the retry ledger
//   3. corrupt a committed index object and watch search degrade to a
//      brute scan instead of failing
//
// Build & run:  cmake --build build && ./build/examples/chaos_drill [seed]
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "common/random.h"
#include "core/rottnest.h"
#include "objectstore/fault_injection.h"
#include "objectstore/object_store.h"
#include "objectstore/retry.h"

using namespace rottnest;

namespace {

format::Schema MakeSchema() {
  format::Schema s;
  s.columns.push_back({"uuid", format::PhysicalType::kFixedLenByteArray, 16});
  s.columns.push_back({"message", format::PhysicalType::kByteArray, 0});
  return s;
}

std::string UuidFor(uint64_t id) {
  std::string u(16, '\0');
  uint64_t hi = Mix64(id), lo = Mix64(id ^ 0x77);
  for (int i = 0; i < 8; ++i) {
    u[i] = static_cast<char>(hi >> (56 - 8 * i));
    u[8 + i] = static_cast<char>(lo >> (56 - 8 * i));
  }
  return u;
}

format::RowBatch MakeBatch(uint64_t first_id, size_t rows) {
  format::RowBatch b;
  b.schema = MakeSchema();
  format::FlatFixed uuids;
  uuids.elem_size = 16;
  format::ColumnVector::Strings messages;
  for (size_t i = 0; i < rows; ++i) {
    uint64_t id = first_id + i;
    std::string u = UuidFor(id);
    uuids.Append(Slice(u));
    messages.push_back("event " + std::to_string(id) +
                       (id % 10 == 0 ? " CRITICAL failure in shard-7"
                                     : " routine heartbeat ok"));
  }
  b.columns.emplace_back(std::move(uuids));
  b.columns.emplace_back(std::move(messages));
  return b;
}

Status StatusOf(const Status& s) { return s; }
template <typename T>
Status StatusOf(const Result<T>& r) {
  return r.status();
}

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto&& _r = (expr);                                             \
    if (!_r.ok()) {                                                 \
      std::printf("FAILED: %s -> %s\n", #expr,                      \
                  StatusOf(_r).ToString().c_str());                 \
      return 1;                                                     \
    }                                                               \
  } while (0)

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 20260806;
  if (argc > 1) {
    char* end = nullptr;
    seed = std::strtoull(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0') {
      std::fprintf(stderr, "usage: %s [numeric-seed]\n", argv[0]);
      return 2;
    }
  }

  // 1. The chaos stack. 10% of ops return Unavailable without executing;
  //    10% of writes land but report Unavailable anyway (the S3 "request
  //    timed out after the server applied it" case). The retrying store
  //    absorbs both; backoff waits advance the simulated clock only.
  SimulatedClock clock;
  objectstore::InMemoryObjectStore inner(&clock);
  objectstore::FaultOptions fopts;
  fopts.seed = seed;
  fopts.transient_fault_rate = 0.1;
  fopts.ambiguous_put_rate = 0.1;
  objectstore::FaultInjectingStore faulty(&inner, fopts);
  objectstore::RetryPolicy policy;
  policy.initial_backoff_micros = 1000;
  policy.max_backoff_micros = 8000;
  objectstore::RetryingStore store(&faulty, policy,
                                   objectstore::SimulatedSleeper(&clock));
  std::printf("chaos store up: seed=%llu transient=10%% ambiguous=10%%\n",
              (unsigned long long)seed);

  // 2. The full lifecycle, oblivious to the faults underneath.
  auto table_r = lake::Table::Create(&store, "lake/events", MakeSchema());
  CHECK_OK(table_r);
  auto table = std::move(table_r).value();
  CHECK_OK(table->Append(MakeBatch(0, 1000)));
  CHECK_OK(table->Append(MakeBatch(1000, 1000)));

  core::RottnestOptions options;
  options.index_dir = "indexes/events";
  core::Rottnest client(&store, table.get(), options);
  CHECK_OK(client.Index("uuid", index::IndexType::kTrie));
  CHECK_OK(client.Index("message", index::IndexType::kFm));

  std::string needle = UuidFor(1234);
  auto uuid_result = client.SearchUuid("uuid", Slice(needle), 5);
  CHECK_OK(uuid_result);
  std::printf("uuid lookup through faults: %zu match(es), row %llu\n",
              uuid_result.value().matches.size(),
              (unsigned long long)uuid_result.value().matches[0].row);

  auto sub_result = client.SearchSubstring("message", "CRITICAL", 5);
  CHECK_OK(sub_result);
  std::printf("substring 'CRITICAL': %zu matches\n",
              sub_result.value().matches.size());

  CHECK_OK(client.Compact("uuid", index::IndexType::kTrie));
  clock.Advance(options.index_timeout_micros + 1);
  auto latest = table->GetSnapshot().value().version;
  auto vac = client.Vacuum(latest);
  CHECK_OK(vac);
  CHECK_OK(client.CheckInvariants());

  const auto& fs = faulty.fault_stats();
  const auto& rs = store.retry_stats();
  std::printf("fault ledger: %llu ops, %llu transient, %llu ambiguous\n",
              (unsigned long long)fs.ops.load(),
              (unsigned long long)fs.transient_injected.load(),
              (unsigned long long)fs.ambiguous_injected.load());
  std::printf("retry ledger: %llu retries, %llu ambiguous resolved, "
              "%llu budget exhausted, %.1f ms simulated backoff\n",
              (unsigned long long)rs.retries.load(),
              (unsigned long long)rs.ambiguous_resolved.load(),
              (unsigned long long)rs.budget_exhausted.load(),
              rs.backoff_micros.load() / 1000.0);
  if (rs.budget_exhausted.load() != 0) {
    std::printf("FAILED: retry budget ran dry\n");
    return 1;
  }

  // 3. Graceful degradation: flip one byte in a committed index object.
  auto entries = client.metadata().ReadAll();
  CHECK_OK(entries);
  // Corrupt the index of the column the degraded search below queries:
  // ReadAll orders entries by object name, which is randomized per
  // process, so entries[0] could just as well be the body index.
  std::string victim;
  for (const auto& e : entries.value()) {
    if (e.column == "uuid") {
      victim = e.index_path;
      break;
    }
  }
  if (victim.empty()) {
    std::printf("FAILED: no uuid index entry to corrupt; registry:\n");
    for (const auto& e : entries.value()) {
      std::printf("  %s %s %s\n", e.column.c_str(), e.index_type.c_str(),
                  e.index_path.c_str());
    }
    return 1;
  }
  Buffer bytes;
  CHECK_OK(inner.Get(victim, &bytes));
  bytes[bytes.size() / 3] ^= 0xff;
  CHECK_OK(inner.Put(victim, Slice(bytes)));
  auto degraded = client.SearchUuid("uuid", Slice(UuidFor(77)), 5);
  CHECK_OK(degraded);
  std::printf("after corrupting %s:\n  search still answers: %zu match(es), "
              "%zu index(es) degraded, %zu file(s) brute-scanned\n",
              victim.c_str(), degraded.value().matches.size(),
              degraded.value().indexes_degraded,
              degraded.value().files_scanned);
  if (degraded.value().matches.size() != 1 ||
      degraded.value().indexes_degraded != 1) {
    std::printf("FAILED: degradation did not engage\n");
    return 1;
  }
  std::printf("done.\n");
  return 0;
}
