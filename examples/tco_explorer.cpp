// TCO explorer: the paper's §VI decision tool as a command-line utility.
// Feed it your workload's six cost parameters (or use the defaults, which
// are the substring-search numbers from the fig7 bench) and it prints the
// phase diagram plus the break-even boundaries — "should I index my lake,
// scan it, or copy it into ElasticSearch?".
//
// Usage:
//   tco_explorer [cpm_i cpm_bf cpq_bf ic_r cpm_r cpq_r]
//
// All six values in USD (per month / per query / one-time as per §VI).
#include <cstdio>
#include <cstdlib>

#include "tco/tco.h"

int main(int argc, char** argv) {
  using namespace rottnest::tco;

  CostParams p;
  // Defaults: the paper-scale substring workload from fig7_phase_diagrams.
  p.cpm_i = 536.0;
  p.cpm_bf = 7.0;
  p.cpq_bf = 0.075;
  p.ic_r = 31.0;
  p.cpm_r = 14.7;
  p.cpq_r = 0.00025;
  if (argc == 7) {
    p.cpm_i = std::atof(argv[1]);
    p.cpm_bf = std::atof(argv[2]);
    p.cpq_bf = std::atof(argv[3]);
    p.ic_r = std::atof(argv[4]);
    p.cpm_r = std::atof(argv[5]);
    p.cpq_r = std::atof(argv[6]);
  } else if (argc != 1) {
    std::printf("usage: %s [cpm_i cpm_bf cpq_bf ic_r cpm_r cpq_r]\n",
                argv[0]);
    return 2;
  }

  std::printf("cost parameters (USD):\n");
  std::printf("  copy-data   cluster/month  cpm_i  = %10.4f\n", p.cpm_i);
  std::printf("  brute-force storage/month  cpm_bf = %10.4f\n", p.cpm_bf);
  std::printf("  brute-force per query      cpq_bf = %10.4f\n", p.cpq_bf);
  std::printf("  rottnest    indexing       ic_r   = %10.4f\n", p.ic_r);
  std::printf("  rottnest    storage/month  cpm_r  = %10.4f\n", p.cpm_r);
  std::printf("  rottnest    per query      cpq_r  = %10.6f\n\n", p.cpq_r);

  std::printf("break-even boundaries (total queries):\n");
  std::printf("%10s %18s %18s %10s\n", "months", "bf->rottnest",
              "rottnest->copy", "band(om)");
  for (double months : {0.25, 1.0, 3.0, 10.0, 36.0}) {
    Boundaries b = ComputeBoundaries(p, months);
    std::printf("%10.2f %18.4g %18.4g %10.1f\n", months, b.bf_to_rottnest,
                b.rottnest_to_copy, RottnestBandOrders(p, months));
  }
  double onset = RottnestOnsetMonths(p);
  std::printf("\nrottnest becomes viable after %.2f months (%.1f days)\n",
              onset, onset * 30.4);

  PhaseDiagram d = ComputePhaseDiagram(p, 0.1, 100, 56, 1, 1e9, 28);
  std::printf("\n%s", RenderPhaseDiagram(d).c_str());

  std::printf("\nexample TCO at 10 months, 100k queries:\n");
  std::printf("  copy-data:   $%.0f\n", TcoCopyData(p, 10, 1e5));
  std::printf("  brute-force: $%.0f\n", TcoBruteForce(p, 10, 1e5));
  std::printf("  rottnest:    $%.0f  <- winner: %s\n",
              TcoRottnest(p, 10, 1e5), ApproachName(Winner(p, 10, 1e5)));
  return 0;
}
