// Log analytics: the paper's observability motivating scenario.
//
// A fleet of Kubernetes pods streams logs into a data lake. An SRE team
// occasionally needs to (a) pull every log line of one pod by its UUID and
// (b) grep the fleet for an error signature — without standing up an
// always-on ElasticSearch cluster. Rottnest indexes land incrementally as
// log files arrive; searches hit the indexed history plus a brute-force
// scan of the not-yet-indexed tail, exactly as the protocol prescribes.
//
// This example persists the lake + indices in ./rottnest_logs_demo via the
// local-disk object store; run it twice to see the state survive.
//
// Build & run:  cmake --build build && ./build/examples/log_analytics
#include <cstdio>
#include <filesystem>

#include "core/rottnest.h"
#include "objectstore/local_disk_store.h"
#include "workload/generators.h"

using namespace rottnest;

namespace {

format::Schema LogSchema() {
  format::Schema s;
  s.columns.push_back({"ts", format::PhysicalType::kInt64, 0});
  s.columns.push_back({"pod_uuid", format::PhysicalType::kFixedLenByteArray,
                       16});
  s.columns.push_back({"line", format::PhysicalType::kByteArray, 0});
  return s;
}

// A stable UUID per pod index.
std::string PodUuid(int pod) {
  workload::UuidGenerator gen(/*seed=*/2024, 16);
  return gen.IdFor(static_cast<uint64_t>(pod));
}

format::RowBatch MakeLogChunk(int64_t start_ts, size_t rows, uint64_t seed) {
  Random rng(seed);
  static const char* kTemplates[] = {
      "GET /api/v1/items 200 12ms",
      "GET /api/v1/items 200 9ms",
      "POST /api/v1/checkout 201 88ms",
      "connection reset by peer",
      "OOMKilled: container exceeded memory limit",
      "slow query detected: 4500ms",
  };
  format::RowBatch b;
  b.schema = LogSchema();
  format::ColumnVector::Ints ts;
  format::FlatFixed pods;
  pods.elem_size = 16;
  format::ColumnVector::Strings lines;
  for (size_t i = 0; i < rows; ++i) {
    ts.push_back(start_ts + static_cast<int64_t>(i));
    int pod = static_cast<int>(rng.NextZipf(40, 1.1));  // Hot pods exist.
    std::string u = PodUuid(pod);
    pods.Append(Slice(u));
    // Rare lines are the interesting ones.
    size_t t = rng.Uniform(100) < 3 ? 3 + rng.Uniform(3) : rng.Uniform(3);
    lines.push_back("pod-" + std::to_string(pod) + " " + kTemplates[t]);
  }
  b.columns.emplace_back(std::move(ts));
  b.columns.emplace_back(std::move(pods));
  b.columns.emplace_back(std::move(lines));
  return b;
}

}  // namespace

int main() {
  std::string root = "rottnest_logs_demo";
  SystemClock clock;
  objectstore::LocalDiskObjectStore store(root, &clock);

  // Open the table if a previous run created it; otherwise create it.
  std::unique_ptr<lake::Table> table;
  auto opened = lake::Table::Open(&store, "lake/logs");
  if (opened.ok()) {
    table = std::move(opened).value();
    std::printf("re-opened existing lake at ./%s\n", root.c_str());
  } else {
    auto created = lake::Table::Create(&store, "lake/logs", LogSchema());
    if (!created.ok()) {
      std::printf("create failed: %s\n", created.status().ToString().c_str());
      return 1;
    }
    table = std::move(created).value();
    std::printf("created new lake at ./%s\n", root.c_str());
  }

  core::RottnestOptions options;
  options.index_dir = "indexes/logs";
  core::Rottnest client(&store, table.get(), options);

  // Ingest three new log files (e.g. one per ingestion window).
  auto before = table->GetSnapshot().value();
  int64_t ts = static_cast<int64_t>(before.TotalRows());
  for (int chunk = 0; chunk < 3; ++chunk) {
    auto v = table->Append(
        MakeLogChunk(ts + chunk * 2000, 2000,
                     static_cast<uint64_t>(ts + chunk)));
    if (!v.ok()) {
      std::printf("append failed: %s\n", v.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("ingested 3 log files; lake now has %llu rows\n",
              (unsigned long long)table->GetSnapshot().value().TotalRows());

  // Index the two searchable columns (only new files get indexed).
  for (auto [column, type] :
       {std::pair{"pod_uuid", index::IndexType::kTrie},
        std::pair{"line", index::IndexType::kFm}}) {
    auto report = client.Index(column, type);
    if (!report.ok()) {
      std::printf("index(%s) failed: %s\n", column,
                  report.status().ToString().c_str());
      return 1;
    }
    if (!report.value().index_path.empty()) {
      std::printf("indexed %zu new file(s) for %s -> %s\n",
                  report.value().covered_files.size(), column,
                  report.value().index_path.c_str());
    }
  }

  // (a) Pull one pod's history by UUID.
  std::string hot_pod = PodUuid(0);
  auto pod_logs = client.SearchUuid("pod_uuid", Slice(hot_pod), 20);
  if (!pod_logs.ok()) return 1;
  std::printf("\npod 0 history: %zu rows (capped at 20), e.g. row %llu\n",
              pod_logs.value().matches.size(),
              pod_logs.value().matches.empty()
                  ? 0ull
                  : (unsigned long long)pod_logs.value().matches[0].row);

  // (b) Grep the fleet for OOM kills.
  auto ooms = client.SearchSubstring("line", "OOMKilled", 10);
  if (!ooms.ok()) return 1;
  std::printf("OOMKilled lines (top %zu):\n", ooms.value().matches.size());
  for (size_t i = 0; i < std::min<size_t>(3, ooms.value().matches.size());
       ++i) {
    std::printf("  %s\n", ooms.value().matches[i].value.c_str());
  }

  // (c) Regex hunt, restricted to a time window: slow queries above 4
  // seconds in the first ingestion window. The literal "slow query" routes
  // through the FM-index; the regex and the ts-range are verified in situ.
  core::SearchOptions window;
  window.range = core::ScanRange{"ts", 0, 1999};
  auto slow =
      client.SearchRegex("line", "slow query detected: [4-9][0-9]{3}ms", 5,
                         window);
  if (!slow.ok()) {
    std::printf("regex failed: %s\n", slow.status().ToString().c_str());
    return 1;
  }
  std::printf("slow queries >4s in window [0,2000): %zu, e.g. \"%s\"\n",
              slow.value().matches.size(),
              slow.value().matches.empty()
                  ? "(none)"
                  : slow.value().matches[0].value.c_str());

  // Weekly maintenance: compact the small per-ingestion index files.
  for (auto [column, type] :
       {std::pair{"pod_uuid", index::IndexType::kTrie},
        std::pair{"line", index::IndexType::kFm}}) {
    auto compacted = client.Compact(column, type);
    if (compacted.ok() && !compacted.value().merged_path.empty()) {
      std::printf("compacted %zu %s index files into one\n",
                  compacted.value().replaced.size(), column);
    }
  }
  auto latest = table->GetSnapshot().value().version;
  auto vac = client.Vacuum(latest);
  if (vac.ok()) {
    std::printf("vacuum removed %zu stale index objects\n",
                vac.value().objects_deleted);
  }

  if (!client.CheckInvariants().ok()) {
    std::printf("INVARIANT VIOLATION\n");
    return 1;
  }
  std::printf("\nstate persisted under ./%s — run again to append more.\n",
              root.c_str());
  (void)std::filesystem::exists(root);
  return 0;
}
