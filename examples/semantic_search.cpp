// Semantic search over a document lake: the paper's RAG / embedding
// scenario. Documents with embedding vectors live in the data lake; a
// Rottnest IVF-PQ index provides approximate nearest-neighbour search with
// in-situ exact reranking. The example shows the recall/latency dial
// (nprobe, refine) and sanity-checks recall against an exact brute-force
// scan — the trade-off behind the paper's Fig 9.
//
// Build & run:  cmake --build build && ./build/examples/semantic_search
#include <cstdio>
#include <set>

#include "baseline/brute_force.h"
#include "core/rottnest.h"
#include "objectstore/object_store.h"
#include "workload/generators.h"

using namespace rottnest;

namespace {

constexpr uint32_t kDim = 64;

format::Schema DocSchema() {
  format::Schema s;
  s.columns.push_back({"title", format::PhysicalType::kByteArray, 0});
  s.columns.push_back(
      {"embedding", format::PhysicalType::kFixedLenByteArray, kDim * 4});
  return s;
}

}  // namespace

int main() {
  SimulatedClock clock;
  objectstore::InMemoryObjectStore store(&clock);

  // Build a corpus of 12k "documents" with clustered embeddings.
  auto table = lake::Table::Create(&store, "lake/docs", DocSchema())
                   .MoveValue();
  workload::VectorGenerator vecs(/*seed=*/7, kDim, /*clusters=*/32);
  constexpr size_t kDocs = 12000;
  constexpr size_t kFiles = 3;
  for (size_t f = 0; f < kFiles; ++f) {
    format::RowBatch b;
    b.schema = DocSchema();
    format::ColumnVector::Strings titles;
    format::FlatFixed embeddings;
    embeddings.elem_size = kDim * 4;
    for (size_t i = f * (kDocs / kFiles); i < (f + 1) * (kDocs / kFiles);
         ++i) {
      titles.push_back("doc-" + std::to_string(i));
      std::vector<float> e = vecs.VectorFor(i);
      embeddings.Append(
          Slice(reinterpret_cast<const uint8_t*>(e.data()), kDim * 4));
    }
    b.columns.emplace_back(std::move(titles));
    b.columns.emplace_back(std::move(embeddings));
    if (!table->Append(b).ok()) return 1;
  }
  std::printf("corpus: %zu documents, %u-dim embeddings, %zu files\n", kDocs,
              kDim, kFiles);

  core::RottnestOptions options;
  options.index_dir = "indexes/docs";
  options.ivfpq.nlist = 64;
  options.ivfpq.num_subquantizers = 8;
  core::Rottnest client(&store, table.get(), options);
  if (!client.Index("embedding", index::IndexType::kIvfPq).ok()) return 1;
  std::printf("IVF-PQ index built (nlist=64, m=8)\n\n");

  // Exact ground truth from the brute-force engine.
  baseline::BruteForceEngine exact(&store, table.get(),
                                   baseline::BruteForceOptions{});
  constexpr size_t kQueries = 10;
  constexpr size_t kTopK = 10;
  std::vector<std::vector<float>> queries;
  std::vector<std::set<std::pair<std::string, uint64_t>>> truth;
  for (size_t q = 0; q < kQueries; ++q) {
    queries.push_back(vecs.QueryNear(q * 997 % kDocs, 1.0));
    auto r = exact.SearchVector("embedding", queries.back().data(), kDim,
                                kTopK);
    if (!r.ok()) return 1;
    std::set<std::pair<std::string, uint64_t>> rows;
    for (const auto& m : r.value().matches) rows.insert({m.file, m.row});
    truth.push_back(std::move(rows));
  }

  // The recall/latency dial.
  std::printf("%8s %8s %10s %12s  %s\n", "nprobe", "refine", "recall@10",
              "S3 GETs", "note");
  struct Dial {
    uint32_t nprobe, refine;
    const char* note;
  };
  for (Dial d : {Dial{1, 20, "cheapest, low recall"},
                 Dial{4, 100, "balanced"},
                 Dial{16, 200, "high recall"},
                 Dial{64, 400, "near exhaustive"}}) {
    size_t hits = 0, denom = 0;
    double gets = 0;
    for (size_t q = 0; q < kQueries; ++q) {
      objectstore::IoTrace trace;
      core::SearchOptions opts;
      opts.trace = &trace;
      opts.params.vector = {d.nprobe, d.refine};
      auto r = client.SearchVector("embedding", queries[q].data(), kDim,
                                   kTopK, opts);
      if (!r.ok()) return 1;
      gets += static_cast<double>(trace.total_gets());
      for (const auto& m : r.value().matches) {
        denom++;
        if (truth[q].count({m.file, m.row})) ++hits;
      }
    }
    std::printf("%8u %8u %10.3f %12.1f  %s\n", d.nprobe, d.refine,
                static_cast<double>(hits) / static_cast<double>(denom),
                gets / kQueries, d.note);
  }

  std::printf("\nall candidates were verified in situ against the lake "
              "files — the index stores only PQ codes, never the data.\n");
  return 0;
}
