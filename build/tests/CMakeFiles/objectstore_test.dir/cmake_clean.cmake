file(REMOVE_RECURSE
  "CMakeFiles/objectstore_test.dir/objectstore/fault_injection_test.cc.o"
  "CMakeFiles/objectstore_test.dir/objectstore/fault_injection_test.cc.o.d"
  "CMakeFiles/objectstore_test.dir/objectstore/io_trace_test.cc.o"
  "CMakeFiles/objectstore_test.dir/objectstore/io_trace_test.cc.o.d"
  "CMakeFiles/objectstore_test.dir/objectstore/object_store_test.cc.o"
  "CMakeFiles/objectstore_test.dir/objectstore/object_store_test.cc.o.d"
  "CMakeFiles/objectstore_test.dir/objectstore/read_batch_test.cc.o"
  "CMakeFiles/objectstore_test.dir/objectstore/read_batch_test.cc.o.d"
  "CMakeFiles/objectstore_test.dir/objectstore/retry_test.cc.o"
  "CMakeFiles/objectstore_test.dir/objectstore/retry_test.cc.o.d"
  "objectstore_test"
  "objectstore_test.pdb"
  "objectstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objectstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
