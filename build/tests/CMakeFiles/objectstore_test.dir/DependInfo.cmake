
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/objectstore/fault_injection_test.cc" "tests/CMakeFiles/objectstore_test.dir/objectstore/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/objectstore_test.dir/objectstore/fault_injection_test.cc.o.d"
  "/root/repo/tests/objectstore/io_trace_test.cc" "tests/CMakeFiles/objectstore_test.dir/objectstore/io_trace_test.cc.o" "gcc" "tests/CMakeFiles/objectstore_test.dir/objectstore/io_trace_test.cc.o.d"
  "/root/repo/tests/objectstore/object_store_test.cc" "tests/CMakeFiles/objectstore_test.dir/objectstore/object_store_test.cc.o" "gcc" "tests/CMakeFiles/objectstore_test.dir/objectstore/object_store_test.cc.o.d"
  "/root/repo/tests/objectstore/read_batch_test.cc" "tests/CMakeFiles/objectstore_test.dir/objectstore/read_batch_test.cc.o" "gcc" "tests/CMakeFiles/objectstore_test.dir/objectstore/read_batch_test.cc.o.d"
  "/root/repo/tests/objectstore/retry_test.cc" "tests/CMakeFiles/objectstore_test.dir/objectstore/retry_test.cc.o" "gcc" "tests/CMakeFiles/objectstore_test.dir/objectstore/retry_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/objectstore/CMakeFiles/rottnest_objectstore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rottnest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
