file(REMOVE_RECURSE
  "CMakeFiles/lake_test.dir/lake/lake_robustness_test.cc.o"
  "CMakeFiles/lake_test.dir/lake/lake_robustness_test.cc.o.d"
  "CMakeFiles/lake_test.dir/lake/metadata_table_test.cc.o"
  "CMakeFiles/lake_test.dir/lake/metadata_table_test.cc.o.d"
  "CMakeFiles/lake_test.dir/lake/table_test.cc.o"
  "CMakeFiles/lake_test.dir/lake/table_test.cc.o.d"
  "CMakeFiles/lake_test.dir/lake/txn_log_test.cc.o"
  "CMakeFiles/lake_test.dir/lake/txn_log_test.cc.o.d"
  "lake_test"
  "lake_test.pdb"
  "lake_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
