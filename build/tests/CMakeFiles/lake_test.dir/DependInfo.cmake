
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lake/lake_robustness_test.cc" "tests/CMakeFiles/lake_test.dir/lake/lake_robustness_test.cc.o" "gcc" "tests/CMakeFiles/lake_test.dir/lake/lake_robustness_test.cc.o.d"
  "/root/repo/tests/lake/metadata_table_test.cc" "tests/CMakeFiles/lake_test.dir/lake/metadata_table_test.cc.o" "gcc" "tests/CMakeFiles/lake_test.dir/lake/metadata_table_test.cc.o.d"
  "/root/repo/tests/lake/table_test.cc" "tests/CMakeFiles/lake_test.dir/lake/table_test.cc.o" "gcc" "tests/CMakeFiles/lake_test.dir/lake/table_test.cc.o.d"
  "/root/repo/tests/lake/txn_log_test.cc" "tests/CMakeFiles/lake_test.dir/lake/txn_log_test.cc.o" "gcc" "tests/CMakeFiles/lake_test.dir/lake/txn_log_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lake/CMakeFiles/rottnest_lake.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/rottnest_format.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/rottnest_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/rottnest_objectstore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rottnest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
