# Empty dependencies file for lake_test.
# This may be replaced when dependencies are built.
