
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cache_fanout_test.cc" "tests/CMakeFiles/cache_test.dir/core/cache_fanout_test.cc.o" "gcc" "tests/CMakeFiles/cache_test.dir/core/cache_fanout_test.cc.o.d"
  "/root/repo/tests/objectstore/caching_store_test.cc" "tests/CMakeFiles/cache_test.dir/objectstore/caching_store_test.cc.o" "gcc" "tests/CMakeFiles/cache_test.dir/objectstore/caching_store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rottnest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/rottnest_index.dir/DependInfo.cmake"
  "/root/repo/build/src/lake/CMakeFiles/rottnest_lake.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/rottnest_format.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/rottnest_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/rottnest_objectstore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rottnest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
