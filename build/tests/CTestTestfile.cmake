# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/objectstore_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/lake_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/tco_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
