file(REMOVE_RECURSE
  "librottnest_lake.a"
)
