file(REMOVE_RECURSE
  "CMakeFiles/rottnest_lake.dir/deletion_vector.cc.o"
  "CMakeFiles/rottnest_lake.dir/deletion_vector.cc.o.d"
  "CMakeFiles/rottnest_lake.dir/metadata_table.cc.o"
  "CMakeFiles/rottnest_lake.dir/metadata_table.cc.o.d"
  "CMakeFiles/rottnest_lake.dir/table.cc.o"
  "CMakeFiles/rottnest_lake.dir/table.cc.o.d"
  "CMakeFiles/rottnest_lake.dir/txn_log.cc.o"
  "CMakeFiles/rottnest_lake.dir/txn_log.cc.o.d"
  "librottnest_lake.a"
  "librottnest_lake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_lake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
