# Empty compiler generated dependencies file for rottnest_lake.
# This may be replaced when dependencies are built.
