file(REMOVE_RECURSE
  "librottnest_format.a"
)
