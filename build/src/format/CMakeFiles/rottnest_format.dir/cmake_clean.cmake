file(REMOVE_RECURSE
  "CMakeFiles/rottnest_format.dir/metadata.cc.o"
  "CMakeFiles/rottnest_format.dir/metadata.cc.o.d"
  "CMakeFiles/rottnest_format.dir/page.cc.o"
  "CMakeFiles/rottnest_format.dir/page.cc.o.d"
  "CMakeFiles/rottnest_format.dir/page_table.cc.o"
  "CMakeFiles/rottnest_format.dir/page_table.cc.o.d"
  "CMakeFiles/rottnest_format.dir/reader.cc.o"
  "CMakeFiles/rottnest_format.dir/reader.cc.o.d"
  "CMakeFiles/rottnest_format.dir/types.cc.o"
  "CMakeFiles/rottnest_format.dir/types.cc.o.d"
  "CMakeFiles/rottnest_format.dir/writer.cc.o"
  "CMakeFiles/rottnest_format.dir/writer.cc.o.d"
  "librottnest_format.a"
  "librottnest_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
