
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/metadata.cc" "src/format/CMakeFiles/rottnest_format.dir/metadata.cc.o" "gcc" "src/format/CMakeFiles/rottnest_format.dir/metadata.cc.o.d"
  "/root/repo/src/format/page.cc" "src/format/CMakeFiles/rottnest_format.dir/page.cc.o" "gcc" "src/format/CMakeFiles/rottnest_format.dir/page.cc.o.d"
  "/root/repo/src/format/page_table.cc" "src/format/CMakeFiles/rottnest_format.dir/page_table.cc.o" "gcc" "src/format/CMakeFiles/rottnest_format.dir/page_table.cc.o.d"
  "/root/repo/src/format/reader.cc" "src/format/CMakeFiles/rottnest_format.dir/reader.cc.o" "gcc" "src/format/CMakeFiles/rottnest_format.dir/reader.cc.o.d"
  "/root/repo/src/format/types.cc" "src/format/CMakeFiles/rottnest_format.dir/types.cc.o" "gcc" "src/format/CMakeFiles/rottnest_format.dir/types.cc.o.d"
  "/root/repo/src/format/writer.cc" "src/format/CMakeFiles/rottnest_format.dir/writer.cc.o" "gcc" "src/format/CMakeFiles/rottnest_format.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rottnest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/rottnest_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/rottnest_objectstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
