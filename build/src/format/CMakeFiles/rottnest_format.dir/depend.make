# Empty dependencies file for rottnest_format.
# This may be replaced when dependencies are built.
