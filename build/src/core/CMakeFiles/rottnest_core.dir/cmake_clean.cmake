file(REMOVE_RECURSE
  "CMakeFiles/rottnest_core.dir/rottnest.cc.o"
  "CMakeFiles/rottnest_core.dir/rottnest.cc.o.d"
  "librottnest_core.a"
  "librottnest_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
