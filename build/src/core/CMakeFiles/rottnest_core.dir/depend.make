# Empty dependencies file for rottnest_core.
# This may be replaced when dependencies are built.
