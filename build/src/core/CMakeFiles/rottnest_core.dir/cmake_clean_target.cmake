file(REMOVE_RECURSE
  "librottnest_core.a"
)
