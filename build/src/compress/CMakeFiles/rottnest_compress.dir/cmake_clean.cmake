file(REMOVE_RECURSE
  "CMakeFiles/rottnest_compress.dir/bitpack.cc.o"
  "CMakeFiles/rottnest_compress.dir/bitpack.cc.o.d"
  "CMakeFiles/rottnest_compress.dir/lz.cc.o"
  "CMakeFiles/rottnest_compress.dir/lz.cc.o.d"
  "librottnest_compress.a"
  "librottnest_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
