file(REMOVE_RECURSE
  "librottnest_compress.a"
)
