# Empty compiler generated dependencies file for rottnest_compress.
# This may be replaced when dependencies are built.
