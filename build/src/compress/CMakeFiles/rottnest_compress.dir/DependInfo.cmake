
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bitpack.cc" "src/compress/CMakeFiles/rottnest_compress.dir/bitpack.cc.o" "gcc" "src/compress/CMakeFiles/rottnest_compress.dir/bitpack.cc.o.d"
  "/root/repo/src/compress/lz.cc" "src/compress/CMakeFiles/rottnest_compress.dir/lz.cc.o" "gcc" "src/compress/CMakeFiles/rottnest_compress.dir/lz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rottnest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
