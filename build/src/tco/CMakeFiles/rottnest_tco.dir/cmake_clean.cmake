file(REMOVE_RECURSE
  "CMakeFiles/rottnest_tco.dir/tco.cc.o"
  "CMakeFiles/rottnest_tco.dir/tco.cc.o.d"
  "librottnest_tco.a"
  "librottnest_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
