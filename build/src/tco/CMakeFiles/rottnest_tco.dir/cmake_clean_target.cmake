file(REMOVE_RECURSE
  "librottnest_tco.a"
)
