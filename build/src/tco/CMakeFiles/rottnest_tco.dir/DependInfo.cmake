
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tco/tco.cc" "src/tco/CMakeFiles/rottnest_tco.dir/tco.cc.o" "gcc" "src/tco/CMakeFiles/rottnest_tco.dir/tco.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rottnest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
