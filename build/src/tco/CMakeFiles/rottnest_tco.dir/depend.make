# Empty dependencies file for rottnest_tco.
# This may be replaced when dependencies are built.
