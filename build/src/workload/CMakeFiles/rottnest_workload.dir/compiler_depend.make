# Empty compiler generated dependencies file for rottnest_workload.
# This may be replaced when dependencies are built.
