file(REMOVE_RECURSE
  "CMakeFiles/rottnest_workload.dir/generators.cc.o"
  "CMakeFiles/rottnest_workload.dir/generators.cc.o.d"
  "librottnest_workload.a"
  "librottnest_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
