file(REMOVE_RECURSE
  "librottnest_workload.a"
)
