# Empty compiler generated dependencies file for rottnest_objectstore.
# This may be replaced when dependencies are built.
