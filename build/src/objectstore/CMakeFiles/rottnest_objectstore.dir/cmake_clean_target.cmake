file(REMOVE_RECURSE
  "librottnest_objectstore.a"
)
