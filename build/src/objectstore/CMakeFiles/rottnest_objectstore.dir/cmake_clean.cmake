file(REMOVE_RECURSE
  "CMakeFiles/rottnest_objectstore.dir/caching_store.cc.o"
  "CMakeFiles/rottnest_objectstore.dir/caching_store.cc.o.d"
  "CMakeFiles/rottnest_objectstore.dir/fault_injection.cc.o"
  "CMakeFiles/rottnest_objectstore.dir/fault_injection.cc.o.d"
  "CMakeFiles/rottnest_objectstore.dir/local_disk_store.cc.o"
  "CMakeFiles/rottnest_objectstore.dir/local_disk_store.cc.o.d"
  "CMakeFiles/rottnest_objectstore.dir/object_store.cc.o"
  "CMakeFiles/rottnest_objectstore.dir/object_store.cc.o.d"
  "CMakeFiles/rottnest_objectstore.dir/read_batch.cc.o"
  "CMakeFiles/rottnest_objectstore.dir/read_batch.cc.o.d"
  "CMakeFiles/rottnest_objectstore.dir/retry.cc.o"
  "CMakeFiles/rottnest_objectstore.dir/retry.cc.o.d"
  "librottnest_objectstore.a"
  "librottnest_objectstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_objectstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
