
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objectstore/caching_store.cc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/caching_store.cc.o" "gcc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/caching_store.cc.o.d"
  "/root/repo/src/objectstore/fault_injection.cc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/fault_injection.cc.o" "gcc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/fault_injection.cc.o.d"
  "/root/repo/src/objectstore/local_disk_store.cc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/local_disk_store.cc.o" "gcc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/local_disk_store.cc.o.d"
  "/root/repo/src/objectstore/object_store.cc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/object_store.cc.o" "gcc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/object_store.cc.o.d"
  "/root/repo/src/objectstore/read_batch.cc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/read_batch.cc.o" "gcc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/read_batch.cc.o.d"
  "/root/repo/src/objectstore/retry.cc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/retry.cc.o" "gcc" "src/objectstore/CMakeFiles/rottnest_objectstore.dir/retry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rottnest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
