# Empty dependencies file for rottnest_index.
# This may be replaced when dependencies are built.
