file(REMOVE_RECURSE
  "librottnest_index.a"
)
