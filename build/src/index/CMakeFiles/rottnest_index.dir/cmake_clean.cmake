file(REMOVE_RECURSE
  "CMakeFiles/rottnest_index.dir/component_file.cc.o"
  "CMakeFiles/rottnest_index.dir/component_file.cc.o.d"
  "CMakeFiles/rottnest_index.dir/fm/fm_index.cc.o"
  "CMakeFiles/rottnest_index.dir/fm/fm_index.cc.o.d"
  "CMakeFiles/rottnest_index.dir/fm/suffix_array.cc.o"
  "CMakeFiles/rottnest_index.dir/fm/suffix_array.cc.o.d"
  "CMakeFiles/rottnest_index.dir/ivfpq/ivfpq_index.cc.o"
  "CMakeFiles/rottnest_index.dir/ivfpq/ivfpq_index.cc.o.d"
  "CMakeFiles/rottnest_index.dir/ivfpq/kmeans.cc.o"
  "CMakeFiles/rottnest_index.dir/ivfpq/kmeans.cc.o.d"
  "CMakeFiles/rottnest_index.dir/trie/trie_index.cc.o"
  "CMakeFiles/rottnest_index.dir/trie/trie_index.cc.o.d"
  "librottnest_index.a"
  "librottnest_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
