
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/component_file.cc" "src/index/CMakeFiles/rottnest_index.dir/component_file.cc.o" "gcc" "src/index/CMakeFiles/rottnest_index.dir/component_file.cc.o.d"
  "/root/repo/src/index/fm/fm_index.cc" "src/index/CMakeFiles/rottnest_index.dir/fm/fm_index.cc.o" "gcc" "src/index/CMakeFiles/rottnest_index.dir/fm/fm_index.cc.o.d"
  "/root/repo/src/index/fm/suffix_array.cc" "src/index/CMakeFiles/rottnest_index.dir/fm/suffix_array.cc.o" "gcc" "src/index/CMakeFiles/rottnest_index.dir/fm/suffix_array.cc.o.d"
  "/root/repo/src/index/ivfpq/ivfpq_index.cc" "src/index/CMakeFiles/rottnest_index.dir/ivfpq/ivfpq_index.cc.o" "gcc" "src/index/CMakeFiles/rottnest_index.dir/ivfpq/ivfpq_index.cc.o.d"
  "/root/repo/src/index/ivfpq/kmeans.cc" "src/index/CMakeFiles/rottnest_index.dir/ivfpq/kmeans.cc.o" "gcc" "src/index/CMakeFiles/rottnest_index.dir/ivfpq/kmeans.cc.o.d"
  "/root/repo/src/index/trie/trie_index.cc" "src/index/CMakeFiles/rottnest_index.dir/trie/trie_index.cc.o" "gcc" "src/index/CMakeFiles/rottnest_index.dir/trie/trie_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rottnest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/rottnest_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/rottnest_format.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/rottnest_objectstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
