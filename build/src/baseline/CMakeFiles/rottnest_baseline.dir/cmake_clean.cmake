file(REMOVE_RECURSE
  "CMakeFiles/rottnest_baseline.dir/brute_force.cc.o"
  "CMakeFiles/rottnest_baseline.dir/brute_force.cc.o.d"
  "CMakeFiles/rottnest_baseline.dir/dedicated_service.cc.o"
  "CMakeFiles/rottnest_baseline.dir/dedicated_service.cc.o.d"
  "librottnest_baseline.a"
  "librottnest_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
