file(REMOVE_RECURSE
  "librottnest_baseline.a"
)
