# Empty compiler generated dependencies file for rottnest_baseline.
# This may be replaced when dependencies are built.
