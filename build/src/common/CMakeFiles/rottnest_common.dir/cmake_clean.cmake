file(REMOVE_RECURSE
  "CMakeFiles/rottnest_common.dir/hash.cc.o"
  "CMakeFiles/rottnest_common.dir/hash.cc.o.d"
  "CMakeFiles/rottnest_common.dir/json.cc.o"
  "CMakeFiles/rottnest_common.dir/json.cc.o.d"
  "CMakeFiles/rottnest_common.dir/status.cc.o"
  "CMakeFiles/rottnest_common.dir/status.cc.o.d"
  "librottnest_common.a"
  "librottnest_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
