file(REMOVE_RECURSE
  "librottnest_common.a"
)
