# Empty dependencies file for rottnest_common.
# This may be replaced when dependencies are built.
