file(REMOVE_RECURSE
  "CMakeFiles/chaos_drill.dir/chaos_drill.cpp.o"
  "CMakeFiles/chaos_drill.dir/chaos_drill.cpp.o.d"
  "chaos_drill"
  "chaos_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
