# Empty dependencies file for chaos_drill.
# This may be replaced when dependencies are built.
