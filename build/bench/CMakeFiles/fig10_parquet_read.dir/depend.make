# Empty dependencies file for fig10_parquet_read.
# This may be replaced when dependencies are built.
