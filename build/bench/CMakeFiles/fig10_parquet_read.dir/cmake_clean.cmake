file(REMOVE_RECURSE
  "CMakeFiles/fig10_parquet_read.dir/fig10_parquet_read.cc.o"
  "CMakeFiles/fig10_parquet_read.dir/fig10_parquet_read.cc.o.d"
  "fig10_parquet_read"
  "fig10_parquet_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_parquet_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
