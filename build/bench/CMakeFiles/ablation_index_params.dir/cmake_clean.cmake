file(REMOVE_RECURSE
  "CMakeFiles/ablation_index_params.dir/ablation_index_params.cc.o"
  "CMakeFiles/ablation_index_params.dir/ablation_index_params.cc.o.d"
  "ablation_index_params"
  "ablation_index_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_index_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
