# Empty dependencies file for ablation_index_params.
# This may be replaced when dependencies are built.
