file(REMOVE_RECURSE
  "librottnest_bench_util.a"
)
