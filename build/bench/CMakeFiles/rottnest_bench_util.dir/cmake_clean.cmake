file(REMOVE_RECURSE
  "CMakeFiles/rottnest_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/rottnest_bench_util.dir/bench_util.cc.o.d"
  "librottnest_bench_util.a"
  "librottnest_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rottnest_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
