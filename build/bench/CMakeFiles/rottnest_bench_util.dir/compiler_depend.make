# Empty compiler generated dependencies file for rottnest_bench_util.
# This may be replaced when dependencies are built.
