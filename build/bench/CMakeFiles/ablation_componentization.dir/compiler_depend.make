# Empty compiler generated dependencies file for ablation_componentization.
# This may be replaced when dependencies are built.
