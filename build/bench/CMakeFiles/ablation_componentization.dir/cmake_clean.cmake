file(REMOVE_RECURSE
  "CMakeFiles/ablation_componentization.dir/ablation_componentization.cc.o"
  "CMakeFiles/ablation_componentization.dir/ablation_componentization.cc.o.d"
  "ablation_componentization"
  "ablation_componentization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_componentization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
