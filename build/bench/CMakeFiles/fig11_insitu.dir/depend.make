# Empty dependencies file for fig11_insitu.
# This may be replaced when dependencies are built.
