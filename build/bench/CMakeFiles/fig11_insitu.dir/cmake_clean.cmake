file(REMOVE_RECURSE
  "CMakeFiles/fig11_insitu.dir/fig11_insitu.cc.o"
  "CMakeFiles/fig11_insitu.dir/fig11_insitu.cc.o.d"
  "fig11_insitu"
  "fig11_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
