file(REMOVE_RECURSE
  "CMakeFiles/fig13_compaction.dir/fig13_compaction.cc.o"
  "CMakeFiles/fig13_compaction.dir/fig13_compaction.cc.o.d"
  "fig13_compaction"
  "fig13_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
