# Empty dependencies file for fig13_compaction.
# This may be replaced when dependencies are built.
