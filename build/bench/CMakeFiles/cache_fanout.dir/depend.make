# Empty dependencies file for cache_fanout.
# This may be replaced when dependencies are built.
