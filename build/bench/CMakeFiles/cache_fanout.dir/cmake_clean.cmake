file(REMOVE_RECURSE
  "CMakeFiles/cache_fanout.dir/cache_fanout.cc.o"
  "CMakeFiles/cache_fanout.dir/cache_fanout.cc.o.d"
  "cache_fanout"
  "cache_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
