file(REMOVE_RECURSE
  "CMakeFiles/fig7_phase_diagrams.dir/fig7_phase_diagrams.cc.o"
  "CMakeFiles/fig7_phase_diagrams.dir/fig7_phase_diagrams.cc.o.d"
  "fig7_phase_diagrams"
  "fig7_phase_diagrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_phase_diagrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
