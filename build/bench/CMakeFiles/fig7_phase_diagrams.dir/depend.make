# Empty dependencies file for fig7_phase_diagrams.
# This may be replaced when dependencies are built.
