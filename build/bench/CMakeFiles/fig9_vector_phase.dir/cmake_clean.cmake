file(REMOVE_RECURSE
  "CMakeFiles/fig9_vector_phase.dir/fig9_vector_phase.cc.o"
  "CMakeFiles/fig9_vector_phase.dir/fig9_vector_phase.cc.o.d"
  "fig9_vector_phase"
  "fig9_vector_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_vector_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
