# Empty compiler generated dependencies file for fig9_vector_phase.
# This may be replaced when dependencies are built.
