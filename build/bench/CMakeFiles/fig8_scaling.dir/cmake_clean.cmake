file(REMOVE_RECURSE
  "CMakeFiles/fig8_scaling.dir/fig8_scaling.cc.o"
  "CMakeFiles/fig8_scaling.dir/fig8_scaling.cc.o.d"
  "fig8_scaling"
  "fig8_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
