# Empty compiler generated dependencies file for fig8_scaling.
# This may be replaced when dependencies are built.
