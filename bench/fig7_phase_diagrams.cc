// Reproduces Fig 7: phase-change diagrams for (a) substring search and
// (b) UUID search, plus the §VII-B1 headline numbers (onset in days,
// Rottnest band width in orders of magnitude at 10 months) and the
// §VII-D3 QPS ceiling.
//
// Method: build each workload at laptop scale, measure per-unit costs
// (index build compute, index/data bytes, projected per-query latencies for
// Rottnest and the 8-worker brute-force cluster), then scale linear costs
// to the paper's dataset sizes (304 GB of text; 2B hashes) and compute the
// phase diagram from the §VI TCO model.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/generators.h"

namespace rottnest::bench {
namespace {

using index::IndexType;
using workload::DatasetSpec;

struct WorkloadResult {
  tco::CostParams params;
  double rottnest_query_s = 0;
  double rottnest_gets = 0;
  double bf_query_s = 0;
};

WorkloadResult RunSubstring() {
  DatasetSpec spec;
  spec.total_rows = 6000;
  spec.num_files = 4;
  spec.doc_chars = 600;
  spec.vector_dim = 8;
  core::RottnestOptions options;
  options.index_dir = "idx/sub";
  format::WriterOptions writer;
  writer.target_page_bytes = 64 << 10;
  writer.target_row_group_bytes = 4 << 20;

  auto env = Env::Create(spec, options, writer);
  Status s = env->IndexAndCompact("body", IndexType::kFm);
  if (!s.ok()) std::printf("index failed: %s\n", s.ToString().c_str());

  workload::TextGenerator sampler(spec.seed);
  std::vector<std::string> patterns;
  for (int i = 0; i < 8; ++i) patterns.push_back(sampler.SamplePattern(2));
  QueryMeasurement rq = MeasureSubstring(env.get(), "body", patterns, 10);
  double bf = MeasureBruteForceSubstring(env.get(), patterns[0], 8);

  // Scale to the paper's 304 GB compressed text corpus.
  double scale = 304e9 / static_cast<double>(env->data_bytes);
  tco::MeasuredWorkload m;
  m.data_bytes = static_cast<double>(env->data_bytes);
  m.index_bytes = static_cast<double>(env->index_bytes);
  m.rottnest_query_s = rq.latency_s;
  m.rottnest_gets_per_query = rq.gets;
  // Brute-force latency at paper scale: transfer-bound, computed
  // analytically from the scaled byte count.
  baseline::BruteForceOptions bf_opts;
  bf_opts.workers = 8;
  m.brute_force_query_s = baseline::BruteForceScanSeconds(
      static_cast<double>(env->data_bytes) * scale, bf_opts, env->s3);
  m.brute_force_workers = 8;
  m.index_build_s = env->index_build_s;
  m.copy_memory_bytes = static_cast<double>(env->data_bytes) * 1.3;
  WorkloadResult result;
  result.params = tco::DeriveCostParams(m, tco::Pricing{}, scale);
  result.rottnest_query_s = rq.latency_s;
  result.rottnest_gets = rq.gets;
  result.bf_query_s = bf;
  return result;
}

WorkloadResult RunUuid() {
  DatasetSpec spec;
  spec.total_rows = 60000;
  spec.num_files = 4;
  spec.doc_chars = 24;
  spec.vector_dim = 8;
  spec.uuid_bytes = 16;
  core::RottnestOptions options;
  options.index_dir = "idx/uuid";
  format::WriterOptions writer;
  writer.target_page_bytes = 64 << 10;
  writer.target_row_group_bytes = 4 << 20;

  auto env = Env::Create(spec, options, writer);
  Status s = env->IndexAndCompact("uuid", IndexType::kTrie);
  if (!s.ok()) std::printf("index failed: %s\n", s.ToString().c_str());

  workload::UuidGenerator ids(spec.seed, spec.uuid_bytes);
  std::vector<std::string> values;
  for (int i = 0; i < 16; ++i) values.push_back(ids.IdFor(i * 1357 % 60000));
  QueryMeasurement rq = MeasureUuid(env.get(), "uuid", values, 10);
  double bf = MeasureBruteForceUuid(env.get(), values[0], 8);

  // Scale to the paper's 2B-hash workload by row count.
  double scale = 2e9 / static_cast<double>(spec.total_rows);
  tco::MeasuredWorkload m;
  m.data_bytes = static_cast<double>(env->data_bytes);
  m.index_bytes = static_cast<double>(env->index_bytes);
  m.rottnest_query_s = rq.latency_s;
  m.rottnest_gets_per_query = rq.gets;
  baseline::BruteForceOptions bf_opts;
  bf_opts.workers = 8;
  m.brute_force_query_s = baseline::BruteForceScanSeconds(
      static_cast<double>(env->data_bytes) * scale, bf_opts, env->s3);
  m.brute_force_workers = 8;
  m.index_build_s = env->index_build_s;
  m.copy_memory_bytes = static_cast<double>(env->data_bytes) * 1.2;
  WorkloadResult result;
  result.params = tco::DeriveCostParams(m, tco::Pricing{}, scale);
  result.rottnest_query_s = rq.latency_s;
  result.rottnest_gets = rq.gets;
  result.bf_query_s = bf;
  return result;
}

void Report(const char* name, const WorkloadResult& w) {
  const tco::CostParams& p = w.params;
  std::printf("\n[%s] measured: rottnest %.3fs/query (%.0f GETs), "
              "brute-force(8 workers) %.3fs/query\n",
              name, w.rottnest_query_s, w.rottnest_gets, w.bf_query_s);
  std::printf("[%s] paper-scale params: cpm_i=$%.2f/mo cpm_bf=$%.2f/mo "
              "cpq_bf=$%.5f ic_r=$%.2f cpm_r=$%.2f/mo cpq_r=$%.6f\n",
              name, p.cpm_i, p.cpm_bf, p.cpq_bf, p.ic_r, p.cpm_r, p.cpq_r);

  std::printf("\nmonths, bf->rottnest boundary (queries), "
              "rottnest->copy boundary (queries)\n");
  for (double months : {0.1, 0.3, 1.0, 3.0, 10.0, 30.0}) {
    tco::Boundaries b = tco::ComputeBoundaries(p, months);
    std::printf("%6.1f, %.3g, %.3g\n", months, b.bf_to_rottnest,
                b.rottnest_to_copy);
  }
  double onset = tco::RottnestOnsetMonths(p);
  std::printf("rottnest onset: %.3f months (%.1f days)\n", onset,
              onset * 30.4);
  std::printf("rottnest band at 10 months: %.1f orders of magnitude\n",
              tco::RottnestBandOrders(p, 10));
  std::printf("S3 throughput cap (5500 GET RPS/prefix): %.0f QPS "
              "(= %.3g queries over 10 months)\n",
              tco::RottnestMaxQps(w.rottnest_gets),
              tco::RottnestMaxQps(w.rottnest_gets) * 3600 * 24 * 30.4 * 10);

  tco::PhaseDiagram d =
      tco::ComputePhaseDiagram(p, 0.1, 100, 48, 1, 1e9, 24);
  std::printf("\nphase diagram (C=copy-data, B=brute-force, R=rottnest):\n%s",
              tco::RenderPhaseDiagram(d).c_str());
}

}  // namespace
}  // namespace rottnest::bench

int main() {
  using namespace rottnest::bench;
  PrintHeader("Figure 7a", "phase diagram — substring search (C4-scale)");
  Report("substring", RunSubstring());
  PrintHeader("Figure 7b", "phase diagram — UUID search (2B hashes)");
  Report("uuid", RunUuid());
  return 0;
}
