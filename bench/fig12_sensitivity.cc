// Reproduces Fig 12: sensitivity of the vector-search (recall 0.92) phase
// boundaries to scaling cpq_r, ic_r, and the index-storage component of
// cpm_r by factors {0.25, 0.5, 1, 2, 4}, plus the §VII-D1 observations:
//   1) cheaper queries help against copy-data, not brute force;
//      a smaller index does the opposite;
//   2) cheaper indexing lowers the break-even operating time but not the
//      long-horizon boundaries.
#include <cstdio>

#include "bench/bench_util.h"

namespace rottnest::bench {
namespace {

using index::IndexType;
using workload::DatasetSpec;

}  // namespace
}  // namespace rottnest::bench

int main() {
  using namespace rottnest;
  using namespace rottnest::bench;

  // Measure the vector workload at recall ~0.92 (nprobe=4, refine=200).
  DatasetSpec spec;
  spec.total_rows = 15000;
  spec.num_files = 4;
  spec.doc_chars = 24;
  spec.vector_dim = 64;
  core::RottnestOptions options;
  options.index_dir = "idx/vec";
  options.ivfpq.nlist = 96;
  options.ivfpq.num_subquantizers = 8;
  auto env = Env::Create(spec, options, format::WriterOptions{});
  (void)env->IndexAndCompact("vec", IndexType::kIvfPq);
  workload::VectorGenerator vecs(spec.seed, spec.vector_dim);
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(vecs.QueryNear(i * 733 % spec.total_rows, 1.0));
  }
  VectorMeasurement vm =
      MeasureVector(env.get(), "vec", queries, 10, 4, 200, nullptr);

  double scale = 1e9 / static_cast<double>(spec.total_rows);
  rottnest::baseline::BruteForceOptions bf_opts;
  bf_opts.workers = 8;
  tco::MeasuredWorkload m;
  m.data_bytes = static_cast<double>(env->data_bytes);
  m.index_bytes = static_cast<double>(env->index_bytes);
  m.rottnest_query_s = vm.latency_s;
  m.rottnest_gets_per_query = vm.gets;
  m.brute_force_query_s = rottnest::baseline::BruteForceScanSeconds(
      static_cast<double>(env->data_bytes) * scale, bf_opts, env->s3);
  m.index_build_s = env->index_build_s;
  m.copy_memory_bytes = static_cast<double>(env->data_bytes) * 1.1;
  m.vector_service = true;
  tco::CostParams base = tco::DeriveCostParams(m, tco::Pricing{}, scale);

  PrintHeader("Figure 12",
              "sensitivity of phase boundaries (vector search @0.92)");
  std::printf("base params: cpm_i=$%.2f cpm_bf=$%.2f cpq_bf=$%.4f "
              "ic_r=$%.2f cpm_r=$%.2f cpq_r=$%.6f\n\n",
              base.cpm_i, base.cpm_bf, base.cpq_bf, base.ic_r, base.cpm_r,
              base.cpq_r);

  const double factors[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  auto report = [&](const char* param,
                    const std::function<tco::CostParams(double)>& scaled) {
    std::printf("--- scaling %s ---\n", param);
    std::printf("%8s %16s %16s %14s\n", "factor", "bf->rn @10mo",
                "rn->copy @10mo", "onset_months");
    for (double f : factors) {
      tco::CostParams p = scaled(f);
      tco::Boundaries b = tco::ComputeBoundaries(p, 10);
      std::printf("%8.2f %16.3g %16.3g %14.3f\n", f, b.bf_to_rottnest,
                  b.rottnest_to_copy, tco::RottnestOnsetMonths(p));
    }
    std::printf("\n");
  };

  report("cpq_r (search latency)", [&](double f) {
    tco::CostParams p = base;
    p.cpq_r *= f;
    return p;
  });
  report("ic_r (indexing cost)", [&](double f) {
    tco::CostParams p = base;
    p.ic_r *= f;
    return p;
  });
  report("cpm_r - cpm_bf (index storage)", [&](double f) {
    tco::CostParams p = base;
    p.cpm_r = p.cpm_bf + (p.cpm_r - p.cpm_bf) * f;
    return p;
  });

  std::printf("(expected per §VII-D1: cpq_r moves only the copy-data "
              "boundary; index storage moves only the brute-force boundary; "
              "ic_r moves the onset but not the 10-month boundaries)\n");
  return 0;
}
