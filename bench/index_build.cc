// Measures the parallel maintenance pipeline on the Fig 13 compaction
// workload (UUID/trie, one data file per ingestion increment):
//
//   (1) Index build: one Index() call covering `kFiles` fresh data files.
//       The serial build stages the per-file chains (footer + page reads)
//       back to back; the width-8 pipeline overlaps them in waves, so the
//       S3-projected end-to-end build time (dependent rounds + measured
//       CPU) collapses while the REQUEST footprint — and therefore the
//       simulated request cost — stays exactly the same.
//   (2) Compact: merging `kFiles` small index files, serial vs concurrent
//       prefetch of the inputs.
//
// Results are printed as a report and recorded into BENCH_index.json.
// Exits non-zero if the width-8 pipeline fails the acceptance gates:
// >= 2x projected end-to-end speedup, at no increase in request cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/json.h"
#include "obs/obs_context.h"

namespace rottnest::bench {
namespace {

using index::IndexType;
using workload::DatasetSpec;

constexpr size_t kFiles = 48;
constexpr size_t kRowsPerFile = 2000;  // Fig 13(b) UUID workload.
constexpr size_t kParallelism = 8;

/// One measured maintenance run.
struct Run {
  double cpu_s = 0;      ///< Measured wall-clock of the call.
  double sim_ms = 0;     ///< S3-projected latency of its dependent rounds.
  double cost_usd = 0;   ///< Simulated request cost.
  uint64_t gets = 0;
  size_t depth = 0;

  double EndToEndSeconds() const { return sim_ms / 1000.0 + cpu_s; }
};

Run FromReport(const core::MaintenanceStats& stats, double cpu_s) {
  Run r;
  r.cpu_s = cpu_s;
  r.sim_ms = stats.simulated_latency_ms;
  r.cost_usd = stats.simulated_cost_usd;
  r.gets = stats.gets;
  r.depth = stats.io_depth;
  return r;
}

DatasetSpec SpecFor(size_t files) {
  DatasetSpec spec;
  spec.total_rows = files * kRowsPerFile;
  spec.num_files = files;
  spec.doc_chars = 24;
  spec.vector_dim = 8;
  return spec;
}

core::RottnestOptions Options() {
  core::RottnestOptions options;
  options.index_dir = "idx/build";
  return options;
}

format::WriterOptions WriterOpts() {
  format::WriterOptions writer;
  writer.target_page_bytes = 32 << 10;
  return writer;
}

/// (1) One Index() call over kFiles fresh files at the given width.
Run RunIndexBuild(size_t parallelism, obs::ObsContext* obs) {
  auto env = Env::Create(SpecFor(kFiles), Options(), WriterOpts());
  core::MaintenanceOptions opts;
  opts.parallelism = parallelism;
  opts.obs = obs;
  core::IndexReport report;
  double cpu = TimeSeconds([&] {
    auto r = env->client->Index("uuid", IndexType::kTrie, opts);
    if (!r.ok() || r.value().index_path.empty()) std::abort();
    report = std::move(r).value();
  });
  if (report.covered_files.size() != kFiles) std::abort();
  return FromReport(report.stats, cpu);
}

/// (2) Compact() over kFiles single-increment index files (the Fig 13
/// steady-state: append + index per increment, then one merge).
Run RunCompact(size_t parallelism, obs::ObsContext* obs) {
  auto env = Env::Create(SpecFor(1), Options(), WriterOpts());
  if (!env->client->Index("uuid", IndexType::kTrie).ok()) std::abort();
  workload::TextGenerator text(env->spec.seed + 1);
  workload::UuidGenerator ids(env->spec.seed, env->spec.uuid_bytes);
  workload::VectorGenerator vecs(env->spec.seed, env->spec.vector_dim);
  uint64_t next_row = kRowsPerFile;
  for (size_t f = 1; f < kFiles; ++f) {
    format::RowBatch batch;
    batch.schema = workload::DatasetSchema(env->spec);
    format::ColumnVector::Ints ts;
    format::FlatFixed uuid_col;
    uuid_col.elem_size = static_cast<uint32_t>(env->spec.uuid_bytes);
    format::ColumnVector::Strings bodies;
    format::FlatFixed vec_col;
    vec_col.elem_size = env->spec.vector_dim * 4;
    for (size_t i = 0; i < kRowsPerFile; ++i, ++next_row) {
      ts.push_back(static_cast<int64_t>(next_row));
      std::string id = ids.IdFor(next_row);
      uuid_col.Append(Slice(id));
      bodies.push_back(text.Document(env->spec.doc_chars));
      std::vector<float> v = vecs.VectorFor(next_row);
      vec_col.Append(Slice(reinterpret_cast<const uint8_t*>(v.data()),
                           v.size() * 4));
    }
    batch.columns.emplace_back(std::move(ts));
    batch.columns.emplace_back(std::move(uuid_col));
    batch.columns.emplace_back(std::move(bodies));
    batch.columns.emplace_back(std::move(vec_col));
    if (!env->table->Append(batch).ok()) std::abort();
    if (!env->client->Index("uuid", IndexType::kTrie).ok()) std::abort();
    env->clock.Advance(1'000'000);  // Distinct commit stamps per increment.
  }

  core::MaintenanceOptions opts;
  opts.parallelism = parallelism;
  opts.obs = obs;
  core::CompactReport report;
  double cpu = TimeSeconds([&] {
    auto r = env->client->Compact("uuid", IndexType::kTrie, opts);
    if (!r.ok() || r.value().merged_path.empty()) std::abort();
    report = std::move(r).value();
  });
  if (report.replaced.size() != kFiles) std::abort();
  return FromReport(report.stats, cpu);
}

void Print(const char* what, const Run& serial, const Run& parallel) {
  std::printf("%s:\n", what);
  std::printf("  serial   (width 1): %7.3f s end-to-end "
              "(%6.1f ms S3 rounds + %6.1f ms cpu), depth %4zu, "
              "%5llu GETs, $%.6f\n",
              serial.EndToEndSeconds(), serial.sim_ms, serial.cpu_s * 1000.0,
              serial.depth, static_cast<unsigned long long>(serial.gets),
              serial.cost_usd);
  std::printf("  parallel (width %zu): %7.3f s end-to-end "
              "(%6.1f ms S3 rounds + %6.1f ms cpu), depth %4zu, "
              "%5llu GETs, $%.6f\n",
              kParallelism, parallel.EndToEndSeconds(), parallel.sim_ms,
              parallel.cpu_s * 1000.0, parallel.depth,
              static_cast<unsigned long long>(parallel.gets),
              parallel.cost_usd);
  std::printf("  speedup: %.2fx\n",
              serial.EndToEndSeconds() / parallel.EndToEndSeconds());
}

void Record(Json::Object* root, const char* prefix, const Run& serial,
            const Run& parallel) {
  Json::Object o;
  o["serial_s"] = Json(serial.EndToEndSeconds());
  o["parallel_s"] = Json(parallel.EndToEndSeconds());
  o["speedup"] = Json(serial.EndToEndSeconds() / parallel.EndToEndSeconds());
  o["serial_cpu_s"] = Json(serial.cpu_s);
  o["parallel_cpu_s"] = Json(parallel.cpu_s);
  o["serial_sim_ms"] = Json(serial.sim_ms);
  o["parallel_sim_ms"] = Json(parallel.sim_ms);
  o["serial_depth"] = Json(static_cast<uint64_t>(serial.depth));
  o["parallel_depth"] = Json(static_cast<uint64_t>(parallel.depth));
  o["serial_gets"] = Json(serial.gets);
  o["parallel_gets"] = Json(parallel.gets);
  o["serial_cost_usd"] = Json(serial.cost_usd);
  o["parallel_cost_usd"] = Json(parallel.cost_usd);
  (*root)[prefix] = Json(o);
}

/// Acceptance gates: >= 2x projected end-to-end at width 8, and the wide
/// pipeline must not issue a single request more than the serial one.
bool Gate(const char* what, const Run& serial, const Run& parallel) {
  bool ok = true;
  double speedup = serial.EndToEndSeconds() / parallel.EndToEndSeconds();
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: %s speedup %.2fx at width %zu (want >= 2x)\n",
                 what, speedup, kParallelism);
    ok = false;
  }
  if (parallel.gets > serial.gets || parallel.cost_usd > serial.cost_usd) {
    std::fprintf(stderr,
                 "FAIL: %s parallel build costs more (%llu GETs $%.6f vs "
                 "%llu GETs $%.6f serial)\n",
                 what, static_cast<unsigned long long>(parallel.gets),
                 parallel.cost_usd,
                 static_cast<unsigned long long>(serial.gets),
                 serial.cost_usd);
    ok = false;
  }
  return ok;
}

}  // namespace
}  // namespace rottnest::bench

int main() {
  using namespace rottnest;
  using namespace rottnest::bench;

  PrintHeader("BENCH_index",
              "maintenance pipeline: serial vs parallel Index / Compact");
  std::printf("workload: %zu data files x %zu rows (Fig 13 UUID/trie)\n\n",
              kFiles, kRowsPerFile);

  // Op-level metrics from every measured run land in the registry
  // snapshotted into BENCH_index.json.
  obs::MetricsRegistry registry;
  obs::ObsContext obs;
  obs.metrics = &registry;

  Run index_serial = RunIndexBuild(1, &obs);
  Run index_parallel = RunIndexBuild(kParallelism, &obs);
  Print("index build (one call, 48 fresh files)", index_serial,
        index_parallel);

  Run compact_serial = RunCompact(1, &obs);
  Run compact_parallel = RunCompact(kParallelism, &obs);
  Print("compact (merge 48 small index files)", compact_serial,
        compact_parallel);

  bool ok = Gate("index build", index_serial, index_parallel);
  ok = Gate("compact", compact_serial, compact_parallel) && ok;

  Json::Object root;
  root["files"] = Json(static_cast<uint64_t>(kFiles));
  root["rows_per_file"] = Json(static_cast<uint64_t>(kRowsPerFile));
  root["parallelism"] = Json(static_cast<uint64_t>(kParallelism));
  Record(&root, "index_build", index_serial, index_parallel);
  Record(&root, "compact", compact_serial, compact_parallel);
  std::printf("\n");
  WriteBenchJson("BENCH_index.json", std::move(root), &registry);
  return ok ? 0 : 1;
}
