// Keyword (inverted-index) bench: cold boolean AND queries through the
// compacted keyword index vs the brute page scan the planner falls back to
// when no index covers the files, measured as traced GET bytes — the §IV
// selectivity argument applied to the fourth index type. Also reports the
// delta+bitpack posting-list compression ratio against raw 4-byte page ids.
//
// Acceptance gates (exit non-zero on failure):
//   * cold indexed GET bytes <= 0.2x the brute page scan's,
//   * the postings codec compresses (ratio > 1x),
//   * every query answers with matches and zero degraded indexes.
// Results land in BENCH_keyword.json (schema-checked by
// tools/check_bench_json.py).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "index/keyword/keyword_index.h"

namespace rottnest::bench {
namespace {

workload::DatasetSpec Spec() {
  workload::DatasetSpec spec;
  spec.total_rows = 20000;
  spec.num_files = 8;
  spec.doc_chars = 200;
  spec.vector_dim = 8;
  return spec;
}

// Small data pages (vs the 1 MB default) so page-granular postings can
// actually prune: with one page per file the probe phase would re-read
// whole files and the index could never beat the scan on bytes.
format::WriterOptions Writer() {
  format::WriterOptions writer;
  writer.target_page_bytes = 4 << 10;
  return writer;
}

core::RottnestOptions Options() {
  core::RottnestOptions options;
  options.index_dir = "idx/kw";
  return options;
}

struct Measured {
  uint64_t gets = 0;
  uint64_t bytes = 0;
  size_t matches = 0;
  bool ok = true;
};

/// One COLD query per term pair: a fresh client (empty cache) per query, so
/// the traced GETs are the from-scratch cost.
Measured MeasureCold(Env* env,
                     const std::vector<std::vector<std::string>>& queries) {
  Measured total;
  for (const std::vector<std::string>& terms : queries) {
    core::Rottnest cold(env->store.get(), env->table.get(), Options());
    objectstore::IoTrace trace;
    core::SearchOptions opts;
    opts.trace = &trace;
    auto r = cold.SearchKeyword("body", terms, /*k=*/100000, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: query: %s\n", r.status().ToString().c_str());
      total.ok = false;
      return total;
    }
    if (r.value().indexes_degraded != 0 || r.value().partial) {
      std::fprintf(stderr, "FAIL: degraded/partial keyword query\n");
      total.ok = false;
      return total;
    }
    total.gets += trace.total_gets();
    total.bytes += trace.total_bytes();
    total.matches += r.value().matches.size();
  }
  return total;
}

}  // namespace

int Main() {
  PrintHeader("keyword", "inverted index vs brute page scan (cold GETs)");
  auto env = Env::Create(Spec(), Options(), Writer());

  // AND pairs from the low-mid Zipf band (ranks ~200-600): each term hits
  // ~1-2% of rows, so the page-level intersection prunes hard while the
  // row-level AND still has verified matches. SamplePattern's 8-128 band
  // is too hot here — those words land on half the (small) pages and the
  // posting intersection would barely prune.
  workload::TextGenerator text(Spec().seed);
  std::vector<std::vector<std::string>> queries;
  for (int i = 0; i < 5; ++i) {
    const std::string& a = text.Word(200 + 37 * i);
    const std::string& b = text.Word(300 + 53 * i);
    queries.push_back({a, b});
  }

  // Brute baseline: no keyword index exists yet, so the planner reports
  // every file uncovered and scans them all (k is never satisfied).
  Measured brute = MeasureCold(env.get(), queries);
  if (!brute.ok) return 1;

  Status s = env->IndexAndCompact("body", index::IndexType::kKeyword);
  if (!s.ok()) {
    std::fprintf(stderr, "FAIL: index: %s\n", s.ToString().c_str());
    return 1;
  }
  Measured indexed = MeasureCold(env.get(), queries);
  if (!indexed.ok) return 1;
  if (indexed.matches != brute.matches || indexed.matches == 0) {
    std::fprintf(stderr, "FAIL: indexed found %zu matches, brute %zu\n",
                 indexed.matches, brute.matches);
    return 1;
  }

  // Postings compression, measured on the one compacted index file.
  auto entries = env->client->metadata().ReadAll();
  if (!entries.ok() || entries.value().size() != 1) {
    std::fprintf(stderr, "FAIL: expected exactly one compacted index\n");
    return 1;
  }
  index::KeywordIndexStats stats;
  {
    ThreadPool pool(4);
    auto reader = index::ComponentFileReader::Open(
        env->store.get(), entries.value()[0].index_path, nullptr);
    if (!reader.ok() ||
        !index::CollectKeywordStats(reader.value().get(), &pool, nullptr,
                                    &stats)
             .ok()) {
      std::fprintf(stderr, "FAIL: stats collection\n");
      return 1;
    }
  }
  double bytes_ratio = static_cast<double>(indexed.bytes) /
                       static_cast<double>(brute.bytes ? brute.bytes : 1);
  double compression =
      static_cast<double>(stats.postings * sizeof(format::PageId)) /
      static_cast<double>(stats.encoded_posting_bytes
                              ? stats.encoded_posting_bytes
                              : 1);

  std::printf("  %zu AND queries over %llu rows (%llu data bytes)\n",
              queries.size(),
              static_cast<unsigned long long>(Spec().total_rows),
              static_cast<unsigned long long>(env->data_bytes));
  std::printf("  brute:   %llu GETs, %llu bytes\n",
              static_cast<unsigned long long>(brute.gets),
              static_cast<unsigned long long>(brute.bytes));
  std::printf("  indexed: %llu GETs, %llu bytes (%zu matches)\n",
              static_cast<unsigned long long>(indexed.gets),
              static_cast<unsigned long long>(indexed.bytes),
              indexed.matches);
  std::printf("  GET-bytes ratio %.3fx; %llu terms, %llu postings, "
              "%.2fx postings compression\n",
              bytes_ratio, static_cast<unsigned long long>(stats.terms),
              static_cast<unsigned long long>(stats.postings), compression);

  Json::Object root;
  root["queries"] = Json(static_cast<uint64_t>(queries.size()));
  root["rows"] = Json(static_cast<uint64_t>(Spec().total_rows));
  root["data_bytes"] = Json(env->data_bytes);
  root["index_bytes"] = Json(env->index_bytes);
  root["brute_gets"] = Json(brute.gets);
  root["brute_bytes"] = Json(brute.bytes);
  root["indexed_gets"] = Json(indexed.gets);
  root["indexed_bytes"] = Json(indexed.bytes);
  root["matches"] = Json(static_cast<uint64_t>(indexed.matches));
  root["get_bytes_ratio"] = Json(bytes_ratio);
  root["terms"] = Json(stats.terms);
  root["postings"] = Json(stats.postings);
  root["encoded_posting_bytes"] = Json(stats.encoded_posting_bytes);
  root["postings_compression_ratio"] = Json(compression);
  if (!WriteBenchJson("BENCH_keyword.json", std::move(root), nullptr)) {
    return 1;
  }

  bool ok = true;
  if (bytes_ratio > 0.2) {
    std::fprintf(stderr,
                 "FAIL: indexed cold GET bytes are %.3fx brute (want <= 0.2)\n",
                 bytes_ratio);
    ok = false;
  }
  if (compression <= 1.0) {
    std::fprintf(stderr, "FAIL: postings did not compress (%.2fx)\n",
                 compression);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace rottnest::bench

int main() { return rottnest::bench::Main(); }
