// Ablation for §V-B / Fig 6: three ways to put an index structure on
// object storage, measured on a trie index over 200k keys.
//
//   whole-index download : serialize+compress the whole structure; every
//                          query downloads everything (1 request, huge).
//   memory-mapped        : each node access becomes its own dependent
//                          range request (tiny reads, deep chains).
//   componentized (ours) : directory+root in one tail read, then exactly
//                          the needed leaf component(s) — 2 dependent
//                          rounds, bytes proportional to one component.
#include <cstdio>

#include "bench/bench_util.h"
#include "index/trie/trie_index.h"

int main() {
  using namespace rottnest;
  using namespace rottnest::bench;

  SimulatedClock clock;
  objectstore::InMemoryObjectStore store(&clock);
  ThreadPool pool(4);
  objectstore::S3Model s3;

  PrintHeader("Ablation (Fig 6)",
              "index layout strategies on object storage (binary trie)");
  std::printf("%-10s %-24s %12s %12s %14s\n", "keys", "strategy", "requests",
              "bytes_kb", "latency_ms");

  for (size_t num_keys : {200000ul, 2000000ul}) {
    index::TrieIndexBuilder builder("uuid");
    for (size_t i = 0; i < num_keys; ++i) {
      index::Key128 key{Mix64(i), Mix64(i ^ 0xbeef)};
      builder.Add(key, static_cast<format::PageId>(i % 512));
    }
    format::PageTable table;
    Buffer file;
    if (!builder.Finish(table, &file).ok()) return 1;
    std::string key_name = "idx/" + std::to_string(num_keys) + ".index";
    (void)store.Put(key_name, Slice(file));

    // Componentized (measured on the real reader).
    objectstore::IoTrace trace;
    auto reader =
        index::ComponentFileReader::Open(&store, key_name, &trace)
            .MoveValue();
    std::vector<format::PageId> pages;
    index::Key128 probe{Mix64(777), Mix64(777 ^ 0xbeef)};
    (void)index::TrieQuery(reader.get(), &pool, &trace, probe, &pages);
    double componentized_ms = trace.ProjectedLatencyMs(s3);

    // Whole-index download.
    objectstore::IoTrace whole;
    whole.BeginRound();
    whole.RecordGet(file.size());
    double whole_ms = whole.ProjectedLatencyMs(s3);

    // Memory-mapped: one dependent request per trie level (~log2 n + 8
    // extra LCP bits).
    int levels = 8;
    for (size_t n = num_keys; n > 1; n /= 2) ++levels;
    objectstore::IoTrace mmapped;
    for (int i = 0; i < levels; ++i) {
      mmapped.BeginRound();
      mmapped.RecordGet(64);
    }
    double mmap_ms = mmapped.ProjectedLatencyMs(s3);

    std::printf("%-10zu %-24s %12d %12.0f %14.1f\n", num_keys,
                "whole-index download", 1, file.size() / 1024.0, whole_ms);
    std::printf("%-10zu %-24s %12d %12.1f %14.1f\n", num_keys,
                "memory-mapped", levels, levels * 64 / 1024.0, mmap_ms);
    std::printf("%-10zu %-24s %12llu %12.0f %14.1f\n", num_keys,
                "componentized (ours)",
                static_cast<unsigned long long>(trace.total_gets()),
                trace.total_bytes() / 1024.0, componentized_ms);
  }
  std::printf("\n(whole-index downloads scale with index size; memory "
              "mapping scales with structure depth; componentization stays "
              "at ~2 rounds and one component of bytes)\n");
  return 0;
}
