// Measures the checkpointed metadata plane (ISSUE 9): the cost of a COLD
// GetSnapshot on a log with 1000 commits, with and without a checkpoint.
//
//   (1) Without checkpoints a cold reader pays one LIST (tail discovery)
//       plus one dependent GET per committed version — the O(n) replay
//       chain the paper's metadata plane is built to avoid.
//   (2) With a checkpoint the same read is the pointer GET, the checkpoint
//       GET, and the (empty) suffix — constant, independent of history.
//
// Every replay GET is a dependent round (version v+1 cannot be requested
// until v arrived), so the S3-projected latency is the per-request TTFB
// times the chain depth — the honest cold-start picture, not a fan-out.
//
// Results are printed as a report and recorded into BENCH_metadata.json
// (schema-checked by tools/check_bench_json.py). Exits non-zero if the
// checkpointed cold read costs more than 0.1x the replay-from-zero GETs.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/json.h"
#include "lake/table.h"
#include "objectstore/io_trace.h"
#include "obs/metrics.h"

namespace rottnest::bench {
namespace {

using lake::Table;
using objectstore::InMemoryObjectStore;
using objectstore::IoTrace;
using objectstore::S3Model;
using objectstore::TracedObjectStore;

constexpr size_t kCommits = 1000;
constexpr double kMaxGetRatio = 0.1;

format::Schema IdSchema() {
  format::Schema s;
  s.columns.push_back({"id", format::PhysicalType::kInt64, 0});
  return s;
}

format::RowBatch IdBatch(int64_t id) {
  format::RowBatch b;
  b.schema = IdSchema();
  format::ColumnVector::Ints ids;
  ids.push_back(id);
  b.columns.emplace_back(std::move(ids));
  return b;
}

/// TracedObjectStore that models every GET as its own dependent round:
/// metadata replay is a version-after-version chain, so request k+1 cannot
/// be issued before request k returned.
class SequentialTracedStore : public TracedObjectStore {
 public:
  using TracedObjectStore::TracedObjectStore;
  Status Get(const std::string& key, Buffer* out) override {
    trace()->BeginRound();
    return TracedObjectStore::Get(key, out);
  }
};

struct ColdRead {
  uint64_t gets = 0;
  uint64_t lists = 0;
  double sim_ms = 0;
  uint64_t rows = 0;
};

/// Cold open + GetSnapshot through a fresh traced store — no warm hints,
/// no shared replay state with the writer.
ColdRead MeasureCold(InMemoryObjectStore* inner, const std::string& root,
                     obs::MetricsRegistry* registry) {
  IoTrace trace;
  SequentialTracedStore traced(inner, &trace);
  auto opened = Table::Open(&traced, root);
  if (!opened.ok()) std::abort();
  std::unique_ptr<Table> t = std::move(opened).value();
  t->AttachMetrics(registry);
  auto snap = t->GetSnapshot();
  if (!snap.ok()) std::abort();
  ColdRead r;
  r.gets = trace.total_gets();
  r.lists = trace.total_lists();
  r.sim_ms = trace.ProjectedLatencyMs(S3Model{});
  r.rows = snap.value().TotalRows();
  return r;
}

void Print(const char* what, const ColdRead& r) {
  std::printf("  %-22s %5llu GETs + %2llu LISTs, %9.1f ms projected "
              "(%llu rows)\n",
              what, static_cast<unsigned long long>(r.gets),
              static_cast<unsigned long long>(r.lists), r.sim_ms,
              static_cast<unsigned long long>(r.rows));
}

}  // namespace
}  // namespace rottnest::bench

int main() {
  using namespace rottnest;
  using namespace rottnest::bench;

  PrintHeader("BENCH_metadata",
              "metadata plane: cold GetSnapshot, checkpointed vs replay");
  std::printf("workload: %zu one-row commits on one table\n\n", kCommits);

  obs::MetricsRegistry registry;
  SimulatedClock clock;
  objectstore::InMemoryObjectStore store{&clock};
  const std::string root = "lake/m";

  auto created = lake::Table::Create(&store, root, IdSchema());
  if (!created.ok()) std::abort();
  std::unique_ptr<lake::Table> writer = std::move(created).value();
  writer->AttachMetrics(&registry);
  for (size_t i = 0; i < kCommits; ++i) {
    if (!writer->Append(IdBatch(static_cast<int64_t>(i))).ok()) std::abort();
    clock.Advance(1'000);
  }

  std::printf("cold GetSnapshot at %zu commits:\n", kCommits);
  // (1) Before any checkpoint exists: the full replay chain.
  ColdRead replay = MeasureCold(&store, root, &registry);
  Print("replay-from-zero:", replay);

  // (2) Checkpoint the tail, then the same cold read again.
  if (!writer->Checkpoint().ok()) std::abort();
  ColdRead ckpt = MeasureCold(&store, root, &registry);
  Print("checkpoint+suffix:", ckpt);

  bool ok = true;
  if (replay.rows != kCommits || ckpt.rows != kCommits) {
    std::fprintf(stderr, "FAIL: cold snapshots disagree on row count "
                 "(%llu replay vs %llu checkpointed, want %zu)\n",
                 static_cast<unsigned long long>(replay.rows),
                 static_cast<unsigned long long>(ckpt.rows), kCommits);
    ok = false;
  }
  double get_ratio = replay.gets == 0
                         ? 1.0
                         : static_cast<double>(ckpt.gets) /
                               static_cast<double>(replay.gets);
  double speedup = ckpt.sim_ms > 0 ? replay.sim_ms / ckpt.sim_ms : 0;
  std::printf("  get ratio: %.4f (gate <= %.2f), projected speedup: %.0fx\n",
              get_ratio, kMaxGetRatio, speedup);
  if (get_ratio > kMaxGetRatio) {
    std::fprintf(stderr,
                 "FAIL: checkpointed cold read used %llu GETs vs %llu "
                 "replay (ratio %.4f > %.2f)\n",
                 static_cast<unsigned long long>(ckpt.gets),
                 static_cast<unsigned long long>(replay.gets), get_ratio,
                 kMaxGetRatio);
    ok = false;
  }

  Json::Object root_json;
  root_json["commits"] = Json(static_cast<uint64_t>(kCommits));
  root_json["replay_gets"] = Json(replay.gets);
  root_json["replay_lists"] = Json(replay.lists);
  root_json["replay_sim_ms"] = Json(replay.sim_ms);
  root_json["checkpoint_gets"] = Json(ckpt.gets);
  root_json["checkpoint_lists"] = Json(ckpt.lists);
  root_json["checkpoint_sim_ms"] = Json(ckpt.sim_ms);
  root_json["get_ratio"] = Json(get_ratio);
  root_json["speedup"] = Json(speedup);
  root_json["rows"] = Json(ckpt.rows);

  std::printf("\n");
  WriteBenchJson("BENCH_metadata.json", std::move(root_json), &registry);
  return ok ? 0 : 1;
}
