// Ablations of the index-structure parameters DESIGN.md calls out:
//
//   * FM-index: BWT block size (occ checkpoint spacing) and suffix-array
//     sample rate — index size vs projected query latency;
//   * IVF-PQ: number of subquantizers M — index size vs recall at fixed
//     (nprobe, refine).
//
// These are the dials that move cpm_r (index storage) against cpq_r
// (search latency), i.e. movement *along* the Fig 12 sensitivity axes.
#include <cstdio>

#include <set>

#include "bench/bench_util.h"
#include "index/fm/fm_index.h"
#include "index/ivfpq/ivfpq_index.h"
#include "index/ivfpq/kmeans.h"

namespace rottnest::bench {
namespace {

format::PageTable OnePageTable() {
  format::FileMeta meta;
  meta.schema.columns.push_back({"c", format::PhysicalType::kByteArray, 0});
  format::RowGroupMeta rg;
  format::ColumnChunkMeta cc;
  format::PageMeta pm;
  pm.offset = 0;
  pm.size = 1000;
  pm.num_values = 1000;
  pm.first_row = 0;
  cc.pages.push_back(pm);
  rg.columns.push_back(cc);
  rg.num_rows = 1000;
  meta.row_groups.push_back(rg);
  format::PageTable t;
  t.AddFile("f", meta, 0);
  return t;
}

void FmAblation() {
  PrintHeader("Ablation", "FM-index block size x sample rate");
  workload::TextGenerator gen(7);
  std::string text;
  for (int i = 0; i < 400; ++i) text += gen.Document(2000);
  std::printf("text: %.1f MB\n\n", text.size() / 1e6);
  std::printf("%12s %12s %12s %14s %12s\n", "block_bytes", "sample_rate",
              "index_MB", "overhead", "latency_ms");

  SimulatedClock clock;
  objectstore::InMemoryObjectStore store(&clock);
  ThreadPool pool(4);
  objectstore::S3Model s3;
  workload::TextGenerator sampler(7);
  std::vector<std::string> patterns;
  for (int i = 0; i < 4; ++i) patterns.push_back(sampler.SamplePattern(1));

  for (uint32_t block : {16u << 10, 64u << 10, 256u << 10}) {
    for (uint32_t rate : {8u, 32u, 128u}) {
      index::FmOptions options;
      options.block_size = block;
      options.sample_rate = rate;
      index::FmIndexBuilder builder("c", options);
      builder.AddPage(Slice(text));
      Buffer file;
      if (!builder.Finish(OnePageTable(), &file).ok()) continue;
      std::string key = "idx/" + std::to_string(block) + "." +
                        std::to_string(rate);
      (void)store.Put(key, Slice(file));

      double total_ms = 0;
      for (const std::string& p : patterns) {
        objectstore::IoTrace trace;
        auto reader =
            index::ComponentFileReader::Open(&store, key, &trace).MoveValue();
        std::vector<format::PageId> pages;
        double cpu = TimeSeconds([&] {
          (void)index::FmLocatePages(reader.get(), &pool, &trace, Slice(p),
                                     20, &pages);
        });
        total_ms += trace.ProjectedLatencyMs(s3) + cpu * 1000;
      }
      std::printf("%12u %12u %12.2f %13.0f%% %12.0f\n", block, rate,
                  file.size() / 1e6, 100.0 * file.size() / text.size(),
                  total_ms / patterns.size());
    }
  }
  std::printf("\n(smaller blocks / denser samples: bigger index, fewer "
              "wasted bytes per rank and shorter locate walks — the "
              "cpm_r-vs-cpq_r dial)\n");
}

void IvfAblation() {
  PrintHeader("Ablation", "IVF-PQ subquantizer count M");
  constexpr uint32_t kDim = 64;
  constexpr size_t kN = 8000;
  workload::VectorGenerator gen(11, kDim);

  SimulatedClock clock;
  objectstore::InMemoryObjectStore store(&clock);
  ThreadPool pool(4);

  // Ground truth by exhaustive scan.
  std::vector<std::vector<float>> queries;
  for (int q = 0; q < 10; ++q) queries.push_back(gen.QueryNear(q * 719, 1.0));
  std::vector<std::vector<float>> vectors;
  for (size_t i = 0; i < kN; ++i) vectors.push_back(gen.VectorFor(i));
  auto exact_top10 = [&](const std::vector<float>& q) {
    std::vector<std::pair<float, size_t>> d(kN);
    for (size_t i = 0; i < kN; ++i) {
      d[i] = {index::SquaredL2(q.data(), vectors[i].data(), kDim), i};
    }
    std::partial_sort(d.begin(), d.begin() + 10, d.end());
    std::set<size_t> ids;
    for (int i = 0; i < 10; ++i) ids.insert(d[i].second);
    return ids;
  };

  std::printf("%6s %12s %10s\n", "M", "index_KB", "recall@10");
  for (uint32_t m : {2u, 4u, 8u, 16u, 32u}) {
    index::IvfPqOptions options;
    options.nlist = 64;
    options.num_subquantizers = m;
    index::IvfPqIndexBuilder builder("v", kDim, options);
    for (size_t i = 0; i < kN; ++i) {
      builder.Add(vectors[i].data(), static_cast<format::PageId>(0),
                  static_cast<uint32_t>(i));
    }
    Buffer file;
    if (!builder.Finish(OnePageTable(), &file).ok()) continue;
    std::string key = "idx/m" + std::to_string(m);
    (void)store.Put(key, Slice(file));
    auto reader =
        index::ComponentFileReader::Open(&store, key, nullptr).MoveValue();

    size_t hits = 0;
    for (const auto& q : queries) {
      auto truth = exact_top10(q);
      std::vector<index::VectorCandidate> got;
      (void)index::IvfPqSearch(reader.get(), &pool, nullptr, q.data(), kDim,
                               16, 10, &got);
      for (const auto& c : got) {
        if (truth.count(c.row_in_page)) ++hits;
      }
    }
    std::printf("%6u %12.0f %10.3f\n", m, file.size() / 1024.0,
                static_cast<double>(hits) / (10.0 * queries.size()));
  }
  std::printf("\n(more subquantizers: bigger codes, tighter ADC distances, "
              "higher recall before refinement)\n");
}

}  // namespace
}  // namespace rottnest::bench

int main() {
  rottnest::bench::FmAblation();
  rottnest::bench::IvfAblation();
  return 0;
}
