// Reproduces Fig 11 and §VII-C: the in-situ-querying design ablation.
//
//   (1) Rottnest as designed: page-granular custom reader, no data copy.
//   (2) "Copy data into a custom format": index storage additionally holds
//       a full copy of the data (cpm_r grows by the data size, ic_r by the
//       copy-writing compute); queries get ideal-granularity reads.
//   (3) "No custom reader": in-situ probes must read whole row-group
//       column chunks instead of single pages (open-source reader
//       behaviour), inflating cpq_r.
//
// Plus the §VII-C latency table: Rottnest page reads vs an ideal custom
// format that fetches exactly the needed bytes without decompression
// (the Lance cold-cache comparison).
#include <cstdio>

#include "bench/bench_util.h"

namespace rottnest::bench {
namespace {

using index::IndexType;
using workload::DatasetSpec;

}  // namespace
}  // namespace rottnest::bench

int main() {
  using namespace rottnest;
  using namespace rottnest::bench;

  // --- UUID workload (the paper's Fig 11 subject). -------------------------
  DatasetSpec spec;
  spec.total_rows = 60000;
  spec.num_files = 4;
  spec.doc_chars = 24;
  spec.vector_dim = 8;
  core::RottnestOptions options;
  options.index_dir = "idx/uuid";
  format::WriterOptions writer;
  writer.target_page_bytes = 64 << 10;
  writer.target_row_group_bytes = 4 << 20;
  auto env = Env::Create(spec, options, writer);
  (void)env->IndexAndCompact("uuid", IndexType::kTrie);

  workload::UuidGenerator ids(spec.seed);
  std::vector<std::string> values;
  for (int i = 0; i < 16; ++i) values.push_back(ids.IdFor(i * 991 % 60000));

  // Measure the real configuration with a detailed trace.
  objectstore::IoTrace trace;
  core::SearchOptions opts;
  opts.trace = &trace;
  size_t pages_probed = 0;
  double cpu_s = TimeSeconds([&] {
    for (const std::string& v : values) {
      auto r = env->client->SearchUuid("uuid", Slice(v), 10, opts);
      if (r.ok()) pages_probed += r.value().pages_probed;
    }
  });
  double n = static_cast<double>(values.size());
  double lat_pages =
      trace.ProjectedLatencyMs(env->s3) / 1000.0 / n + cpu_s / n;
  double gets = static_cast<double>(trace.total_gets()) / n;

  // Average page and chunk sizes of the uuid column.
  auto snap = env->table->GetSnapshot().MoveValue();
  auto reader =
      format::FileReader::Open(env->store.get(), snap.files[0].path, nullptr)
          .MoveValue();
  int col = env->table->schema().FindColumn("uuid");
  const auto& cc0 = reader->meta().row_groups[0].columns[col];
  // At paper scale, Parquet row groups are 128MB and the indexed column
  // dominates them (§V-A): chunk-granular probes read ~100MB. Our miniature
  // chunks would understate the effect, so use the paper-scale figure.
  double chunk_bytes = 100e6;
  double page_bytes =
      cc0.pages.empty() ? 1024 : static_cast<double>(cc0.pages[0].size);
  double probes_per_query = pages_probed / n;

  // (3) no custom reader: each probe fetches a whole column chunk.
  double lat_chunks =
      lat_pages +
      probes_per_query *
          (env->s3.RoundLatencyMs(static_cast<uint64_t>(chunk_bytes), 1) -
           env->s3.RoundLatencyMs(static_cast<uint64_t>(page_bytes), 1)) /
          1000.0;
  // (2) ideal custom format: probes fetch ~2KB exactly.
  double lat_ideal =
      lat_pages + probes_per_query *
                      (env->s3.RoundLatencyMs(2048, 1) -
                       env->s3.RoundLatencyMs(
                           static_cast<uint64_t>(page_bytes), 1)) /
                      1000.0;

  double scale = 2e9 / static_cast<double>(spec.total_rows);
  rottnest::baseline::BruteForceOptions bf_opts;
  bf_opts.workers = 8;
  double bf_s = rottnest::baseline::BruteForceScanSeconds(
      static_cast<double>(env->data_bytes) * scale, bf_opts, env->s3);

  auto derive = [&](double query_s, double extra_storage_bytes,
                    double extra_build_s) {
    tco::MeasuredWorkload m;
    m.data_bytes = static_cast<double>(env->data_bytes);
    m.index_bytes =
        static_cast<double>(env->index_bytes) + extra_storage_bytes;
    m.rottnest_query_s = query_s;
    m.rottnest_gets_per_query = gets;
    m.brute_force_query_s = bf_s;
    m.index_build_s = env->index_build_s + extra_build_s;
    m.copy_memory_bytes = static_cast<double>(env->data_bytes) * 1.2;
    return tco::DeriveCostParams(m, tco::Pricing{}, scale);
  };

  PrintHeader("Figure 11", "in-situ querying ablation (UUID search)");
  struct Config {
    const char* name;
    tco::CostParams params;
    double query_s;
  };
  // Copying the data costs ~1 extra pass over it at build time.
  std::vector<Config> configs = {
      {"rottnest (in-situ + custom reader)", derive(lat_pages, 0, 0),
       lat_pages},
      {"with data copy in custom format",
       derive(lat_ideal, static_cast<double>(env->data_bytes),
              env->index_build_s * 0.5),
       lat_ideal},
      {"without custom reader (chunk reads)", derive(lat_chunks, 0, 0),
       lat_chunks},
  };
  std::printf("%-38s %10s %10s %10s %14s %14s\n", "config", "query_s",
              "cpm_r", "ic_r", "bf->rn @10mo", "rn->copy @10mo");
  for (const Config& c : configs) {
    tco::Boundaries b = tco::ComputeBoundaries(c.params, 10);
    std::printf("%-38s %10.3f %10.2f %10.2f %14.3g %14.3g\n", c.name,
                c.query_s, c.params.cpm_r, c.params.ic_r, b.bf_to_rottnest,
                b.rottnest_to_copy);
  }
  std::printf("\n(paper: the copy shrinks the brute-force band several "
              "fold on long horizons; chunk-granular reads push Rottnest "
              "below the copy-data approach over several orders)\n");

  // --- §VII-C: Rottnest vs ideal custom format (Lance), vector search. -----
  PrintHeader("§VII-C", "vector search: page reads vs ideal custom format");
  DatasetSpec vspec;
  vspec.total_rows = 15000;
  vspec.num_files = 4;
  vspec.doc_chars = 24;
  vspec.vector_dim = 64;
  core::RottnestOptions voptions;
  voptions.index_dir = "idx/vec";
  voptions.ivfpq.nlist = 96;
  voptions.ivfpq.num_subquantizers = 8;
  auto venv = Env::Create(vspec, voptions, format::WriterOptions{});
  (void)venv->IndexAndCompact("vec", IndexType::kIvfPq);
  workload::VectorGenerator vecs(vspec.seed, vspec.vector_dim);
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(vecs.QueryNear(i * 733 % vspec.total_rows, 1.0));
  }
  auto truth = VectorGroundTruth(venv.get(), queries, 10);
  std::printf("%8s %10s %14s %18s\n", "target", "achieved",
              "rottnest_s", "ideal_format_s");
  struct Target {
    double recall;
    uint32_t nprobe, refine;
  };
  for (Target t : {Target{0.87, 2, 200}, Target{0.92, 4, 200},
                   Target{0.97, 8, 400}}) {
    objectstore::IoTrace vtrace;
    size_t vpages = 0;
    VectorMeasurement m = MeasureVector(venv.get(), "vec", queries, 10,
                                        t.nprobe, t.refine, &truth);
    (void)vtrace;
    (void)vpages;
    // Ideal format: each refined vector read costs a ~256B exact fetch
    // instead of a page fetch; both are TTFB-bound, so the difference is
    // small — mirroring Lance's 1.90s vs Rottnest's 2.09s.
    double per_probe_delta =
        (venv->s3.RoundLatencyMs(256, 1) -
         venv->s3.RoundLatencyMs(64 << 10, 1)) /
        1000.0;
    double ideal = m.latency_s + per_probe_delta;  // One probe round.
    std::printf("%8.2f %10.3f %14.3f %18.3f\n", t.recall, m.recall,
                m.latency_s, ideal);
  }
  std::printf("\n(paper: 2.09 vs 1.90 / 2.30 vs 1.94 / 2.81 vs 2.72 "
              "seconds — comparable at all targets)\n");
  return 0;
}
