// Shared measurement harness for the figure benches: builds the synthetic
// workloads, runs indexed / brute-force / copy-data searches, projects S3
// latencies from recorded access patterns, and derives the §VI cost
// parameters at paper scale.
#ifndef ROTTNEST_BENCH_BENCH_UTIL_H_
#define ROTTNEST_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/brute_force.h"
#include "baseline/dedicated_service.h"
#include "common/json.h"
#include "core/rottnest.h"
#include "objectstore/object_store.h"
#include "obs/metrics.h"
#include "tco/tco.h"
#include "workload/generators.h"

namespace rottnest::bench {

/// Wall-clock seconds of `fn`.
double TimeSeconds(const std::function<void()>& fn);

/// One fully-built experiment environment: dataset + Rottnest client.
struct Env {
  SimulatedClock clock;
  std::unique_ptr<objectstore::InMemoryObjectStore> store;
  std::unique_ptr<lake::Table> table;
  std::unique_ptr<core::Rottnest> client;
  workload::DatasetSpec spec;
  objectstore::S3Model s3;
  double index_build_s = 0;  ///< Wall-clock spent in Index + Compact.
  uint64_t data_bytes = 0;
  uint64_t index_bytes = 0;

  /// Builds the dataset and (optionally) indexes + compacts `column` with
  /// the given index type.
  static std::unique_ptr<Env> Create(const workload::DatasetSpec& spec,
                                     const core::RottnestOptions& options,
                                     const format::WriterOptions& writer);

  /// Indexes `column`, then compacts all index files into one. Records
  /// build time and index bytes.
  Status IndexAndCompact(const std::string& column, index::IndexType type);

  /// Total bytes under the index dir (index files only).
  uint64_t MeasureIndexBytes() const;
};

/// Latency of one Rottnest query projected onto S3 (IO rounds) plus the
/// measured CPU time of the call.
struct QueryMeasurement {
  double latency_s = 0;
  double gets = 0;
  size_t matches = 0;
};

/// Runs `queries` substring searches and averages.
QueryMeasurement MeasureSubstring(Env* env, const std::string& column,
                                  const std::vector<std::string>& patterns,
                                  size_t k);

/// Runs UUID point lookups and averages.
QueryMeasurement MeasureUuid(Env* env, const std::string& column,
                             const std::vector<std::string>& values,
                             size_t k);

/// Runs vector searches and averages; also reports recall@k against an
/// exact scan when `ground_truth` is provided.
struct VectorMeasurement : QueryMeasurement {
  double recall = 0;
};
VectorMeasurement MeasureVector(
    Env* env, const std::string& column,
    const std::vector<std::vector<float>>& queries, size_t k, uint32_t nprobe,
    uint32_t refine,
    const std::vector<std::vector<std::pair<std::string, uint64_t>>>*
        ground_truth = nullptr);

/// Brute-force latency (projected) for one representative query per type.
double MeasureBruteForceSubstring(Env* env, const std::string& pattern,
                                  size_t workers);
double MeasureBruteForceUuid(Env* env, const std::string& value,
                             size_t workers);
double MeasureBruteForceVector(Env* env, const std::vector<float>& query,
                               size_t workers);

/// Exact ground truth for vector queries: top-k (file, row) per query.
std::vector<std::vector<std::pair<std::string, uint64_t>>> VectorGroundTruth(
    Env* env, const std::vector<std::vector<float>>& queries, size_t k);

/// Prints a section header so bench output reads as a report.
void PrintHeader(const std::string& figure, const std::string& title);

/// Writes `root` to `path` as a BENCH_*.json payload, folding the
/// registry's SnapshotJson() in under "metrics_snapshot" — the block the
/// bench-JSON schema check (tools/check_bench_json.py, a ctest) requires
/// of every emitted BENCH_*.json. A null registry writes an empty
/// snapshot. Returns false if the file could not be written.
bool WriteBenchJson(const std::string& path, Json::Object root,
                    const obs::MetricsRegistry* registry);

}  // namespace rottnest::bench

#endif  // ROTTNEST_BENCH_BENCH_UTIL_H_
