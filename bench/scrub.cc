// Measures the anti-entropy subsystem on the steady-state lake shape (one
// index object per ingestion increment, the Fig 13 workload before
// compaction):
//
//   (1) Scrub: a deep audit of `kFiles` committed index objects, serial vs
//       width-8. Each per-index audit is an independent HEAD + tail-read
//       chain, so the parallel scrub overlaps them in waves: the
//       S3-projected end-to-end time collapses while the REQUEST footprint
//       (and therefore the simulated request cost) is width-invariant.
//   (2) A full scrub -> repair cycle: `kRotten` objects suffer post-commit
//       rot, the scrub must report EXACTLY those (no false positives), and
//       Repair (quarantine + rebuild + GC) must restore a clean scrub.
//
// Results are printed as a report and recorded into BENCH_scrub.json.
// Exits non-zero if width-8 Scrub fails the acceptance gates (>= 2x
// projected end-to-end speedup at identical request counts) or the repair
// cycle does not converge.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "obs/obs_context.h"

namespace rottnest::bench {
namespace {

using index::IndexType;
using workload::DatasetSpec;

constexpr size_t kFiles = 48;
constexpr size_t kRowsPerFile = 2000;
constexpr size_t kRotten = 6;
constexpr size_t kParallelism = 8;

struct Run {
  double cpu_s = 0;
  double sim_ms = 0;
  double cost_usd = 0;
  uint64_t gets = 0;
  size_t depth = 0;

  double EndToEndSeconds() const { return sim_ms / 1000.0 + cpu_s; }
};

Run FromStats(const core::MaintenanceStats& stats, double cpu_s) {
  Run r;
  r.cpu_s = cpu_s;
  r.sim_ms = stats.simulated_latency_ms;
  r.cost_usd = stats.simulated_cost_usd;
  r.gets = stats.gets;
  r.depth = stats.io_depth;
  return r;
}

DatasetSpec SpecFor(size_t files) {
  DatasetSpec spec;
  spec.total_rows = files * kRowsPerFile;
  spec.num_files = files;
  spec.doc_chars = 24;
  spec.vector_dim = 8;
  return spec;
}

core::RottnestOptions Options() {
  core::RottnestOptions options;
  options.index_dir = "idx/scrub";
  return options;
}

format::WriterOptions WriterOpts() {
  format::WriterOptions writer;
  writer.target_page_bytes = 32 << 10;
  return writer;
}

/// The steady-state lake: kFiles increments, each appended and indexed
/// separately, leaving kFiles committed index objects to audit.
std::unique_ptr<Env> BuildIncrementalEnv() {
  auto env = Env::Create(SpecFor(1), Options(), WriterOpts());
  if (!env->client->Index("uuid", IndexType::kTrie).ok()) std::abort();
  workload::TextGenerator text(env->spec.seed + 1);
  workload::UuidGenerator ids(env->spec.seed, env->spec.uuid_bytes);
  workload::VectorGenerator vecs(env->spec.seed, env->spec.vector_dim);
  uint64_t next_row = kRowsPerFile;
  for (size_t f = 1; f < kFiles; ++f) {
    format::RowBatch batch;
    batch.schema = workload::DatasetSchema(env->spec);
    format::ColumnVector::Ints ts;
    format::FlatFixed uuid_col;
    uuid_col.elem_size = static_cast<uint32_t>(env->spec.uuid_bytes);
    format::ColumnVector::Strings bodies;
    format::FlatFixed vec_col;
    vec_col.elem_size = env->spec.vector_dim * 4;
    for (size_t i = 0; i < kRowsPerFile; ++i, ++next_row) {
      ts.push_back(static_cast<int64_t>(next_row));
      std::string id = ids.IdFor(next_row);
      uuid_col.Append(Slice(id));
      bodies.push_back(text.Document(env->spec.doc_chars));
      std::vector<float> v = vecs.VectorFor(next_row);
      vec_col.Append(Slice(reinterpret_cast<const uint8_t*>(v.data()),
                           v.size() * 4));
    }
    batch.columns.emplace_back(std::move(ts));
    batch.columns.emplace_back(std::move(uuid_col));
    batch.columns.emplace_back(std::move(bodies));
    batch.columns.emplace_back(std::move(vec_col));
    if (!env->table->Append(batch).ok()) std::abort();
    if (!env->client->Index("uuid", IndexType::kTrie).ok()) std::abort();
    env->clock.Advance(1'000'000);
  }
  return env;
}

/// Deep scrub at the given width; aborts unless it audited
/// `expect_indexes` committed entries (0 = don't care).
Run RunScrub(Env* env, size_t parallelism, size_t expect_indexes,
             core::ScrubReport* out, obs::ObsContext* obs) {
  core::ScrubOptions opts;
  opts.parallelism = parallelism;
  opts.obs = obs;
  core::ScrubReport report;
  double cpu = TimeSeconds([&] {
    auto r = env->client->Scrub(opts);
    if (!r.ok()) std::abort();
    report = std::move(r).value();
  });
  if (expect_indexes != 0 && report.indexes_checked != expect_indexes) {
    std::abort();
  }
  if (out != nullptr) *out = report;
  return FromStats(report.stats, cpu);
}

void Print(const char* what, const Run& serial, const Run& parallel) {
  std::printf("%s:\n", what);
  std::printf("  serial   (width 1): %7.3f s end-to-end "
              "(%6.1f ms S3 rounds + %6.1f ms cpu), depth %4zu, "
              "%5llu GETs, $%.6f\n",
              serial.EndToEndSeconds(), serial.sim_ms, serial.cpu_s * 1000.0,
              serial.depth, static_cast<unsigned long long>(serial.gets),
              serial.cost_usd);
  std::printf("  parallel (width %zu): %7.3f s end-to-end "
              "(%6.1f ms S3 rounds + %6.1f ms cpu), depth %4zu, "
              "%5llu GETs, $%.6f\n",
              kParallelism, parallel.EndToEndSeconds(), parallel.sim_ms,
              parallel.cpu_s * 1000.0, parallel.depth,
              static_cast<unsigned long long>(parallel.gets),
              parallel.cost_usd);
  std::printf("  speedup: %.2fx\n",
              serial.EndToEndSeconds() / parallel.EndToEndSeconds());
}

void Record(Json::Object* root, const char* prefix, const Run& serial,
            const Run& parallel) {
  Json::Object o;
  o["serial_s"] = Json(serial.EndToEndSeconds());
  o["parallel_s"] = Json(parallel.EndToEndSeconds());
  o["speedup"] = Json(serial.EndToEndSeconds() / parallel.EndToEndSeconds());
  o["serial_sim_ms"] = Json(serial.sim_ms);
  o["parallel_sim_ms"] = Json(parallel.sim_ms);
  o["serial_depth"] = Json(static_cast<uint64_t>(serial.depth));
  o["parallel_depth"] = Json(static_cast<uint64_t>(parallel.depth));
  o["serial_gets"] = Json(serial.gets);
  o["parallel_gets"] = Json(parallel.gets);
  o["serial_cost_usd"] = Json(serial.cost_usd);
  o["parallel_cost_usd"] = Json(parallel.cost_usd);
  (*root)[prefix] = Json(o);
}

bool Gate(const char* what, const Run& serial, const Run& parallel) {
  bool ok = true;
  double speedup = serial.EndToEndSeconds() / parallel.EndToEndSeconds();
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: %s speedup %.2fx at width %zu (want >= 2x)\n",
                 what, speedup, kParallelism);
    ok = false;
  }
  if (parallel.gets != serial.gets) {
    std::fprintf(stderr,
                 "FAIL: %s request count is not width-invariant "
                 "(%llu GETs parallel vs %llu serial)\n",
                 what, static_cast<unsigned long long>(parallel.gets),
                 static_cast<unsigned long long>(serial.gets));
    ok = false;
  }
  if (parallel.cost_usd > serial.cost_usd) {
    std::fprintf(stderr, "FAIL: %s parallel audit costs more ($%.6f vs $%.6f)\n",
                 what, parallel.cost_usd, serial.cost_usd);
    ok = false;
  }
  return ok;
}

size_t Errors(const core::ScrubReport& r) {
  size_t n = 0;
  for (const auto& f : r.findings) {
    if (f.severity == core::ScrubSeverity::kError) ++n;
  }
  return n;
}

/// (2) Rot kRotten objects, scrub, repair, scrub again. Returns false if
/// the scrub misreports or the repair does not converge.
bool RunRepairCycle(Json::Object* root, obs::ObsContext* obs) {
  auto env = BuildIncrementalEnv();
  auto entries = env->client->metadata().ReadAll();
  if (!entries.ok() || entries.value().size() != kFiles) std::abort();
  // Post-commit rot on every 8th object: a mid-file bit flip, the damage a
  // deep scrub must localize.
  std::vector<std::string> rotten;
  for (size_t i = 0; i < kRotten; ++i) {
    const std::string& key = entries.value()[i * 8].index_path;
    Buffer buf;
    if (!env->store->Get(key, &buf).ok()) std::abort();
    buf[buf.size() / 3] ^= 0xff;
    if (!env->store->Put(key, Slice(buf)).ok()) std::abort();
    rotten.push_back(key);
  }

  core::ScrubReport found;
  RunScrub(env.get(), kParallelism, kFiles, &found, obs);
  bool ok = true;
  if (Errors(found) != kRotten) {
    std::fprintf(stderr, "FAIL: scrub reported %zu errors, injected %zu\n",
                 Errors(found), kRotten);
    ok = false;
  }

  core::RepairReport repaired;
  core::RepairOptions ropts;
  ropts.parallelism = kParallelism;
  ropts.obs = obs;
  double repair_cpu = TimeSeconds([&] {
    auto r = env->client->Repair(found, ropts);
    if (!r.ok()) std::abort();
    repaired = std::move(r).value();
  });
  Run repair = FromStats(repaired.stats, repair_cpu);
  if (repaired.quarantined.size() != kRotten) {
    std::fprintf(stderr, "FAIL: repair quarantined %zu of %zu rotten\n",
                 repaired.quarantined.size(), kRotten);
    ok = false;
  }

  core::ScrubReport after;
  RunScrub(env.get(), kParallelism, 0, &after, obs);
  if (!after.clean() || Errors(after) != 0) {
    std::fprintf(stderr, "FAIL: scrub not clean after repair\n");
    ok = false;
  }

  std::printf("repair cycle (%zu of %zu objects rotten):\n", kRotten, kFiles);
  std::printf("  scrub found %zu errors; repair quarantined %zu, rebuilt %zu "
              "(%llu rows) in %.3f s end-to-end; post-repair scrub clean: %s\n",
              Errors(found), repaired.quarantined.size(),
              repaired.rebuilt.size(),
              static_cast<unsigned long long>(repaired.rebuilt_rows),
              repair.EndToEndSeconds(), after.clean() ? "yes" : "NO");

  Json::Object o;
  o["rotten"] = Json(static_cast<uint64_t>(kRotten));
  o["errors_found"] = Json(static_cast<uint64_t>(Errors(found)));
  o["quarantined"] = Json(static_cast<uint64_t>(repaired.quarantined.size()));
  o["rebuilt"] = Json(static_cast<uint64_t>(repaired.rebuilt.size()));
  o["rebuilt_rows"] = Json(repaired.rebuilt_rows);
  o["repair_s"] = Json(repair.EndToEndSeconds());
  o["clean_after"] = Json(after.clean());
  (*root)["repair_cycle"] = Json(o);
  return ok;
}

}  // namespace
}  // namespace rottnest::bench

int main() {
  using namespace rottnest;
  using namespace rottnest::bench;

  PrintHeader("BENCH_scrub",
              "anti-entropy: serial vs parallel Scrub, repair cycle");
  std::printf("workload: %zu index objects (%zu rows each, UUID/trie)\n\n",
              kFiles, kRowsPerFile);

  // Op-level metrics from every measured run land in the registry
  // snapshotted into BENCH_scrub.json.
  obs::MetricsRegistry registry;
  obs::ObsContext obs;
  obs.metrics = &registry;

  // Fresh env per width so neither run reuses the other's audit state.
  Run serial, parallel;
  {
    auto env = BuildIncrementalEnv();
    serial = RunScrub(env.get(), 1, kFiles, nullptr, &obs);
  }
  {
    auto env = BuildIncrementalEnv();
    parallel = RunScrub(env.get(), kParallelism, kFiles, nullptr, &obs);
  }
  Print("deep scrub (48 index objects)", serial, parallel);

  Json::Object root;
  root["files"] = Json(static_cast<uint64_t>(kFiles));
  root["rows_per_file"] = Json(static_cast<uint64_t>(kRowsPerFile));
  root["parallelism"] = Json(static_cast<uint64_t>(kParallelism));
  Record(&root, "scrub", serial, parallel);

  bool ok = Gate("deep scrub", serial, parallel);
  ok = RunRepairCycle(&root, &obs) && ok;

  std::printf("\n");
  WriteBenchJson("BENCH_scrub.json", std::move(root), &registry);
  return ok ? 0 : 1;
}
