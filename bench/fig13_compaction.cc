// Reproduces Fig 13: search latency on uncompacted vs compacted index
// files as the dataset grows. Uncompacted, every data-file increment has
// its own index file and a search must open all of them (dependent rounds
// grow with data size); after LSM-style compaction a search opens one
// merged file and latency is ~constant regardless of dataset size — the
// §VII-D2 scale-invariance of cpq_r.
#include <cstdio>

#include "bench/bench_util.h"

namespace rottnest::bench {
namespace {

using index::IndexType;
using workload::DatasetSpec;

struct Row {
  size_t files;
  double uncompacted_s;
  double compacted_s;
  size_t live_indexes_before;
  size_t live_indexes_after;
};

// Builds `files` increments, indexing after each append (one index file per
// data file), measures, compacts, measures again.
Row RunOne(const char* column, IndexType type, size_t files,
           size_t rows_per_file, size_t doc_chars) {
  DatasetSpec spec;
  spec.total_rows = rows_per_file;  // Appended incrementally below.
  spec.num_files = 1;
  spec.doc_chars = doc_chars;
  spec.vector_dim = 8;
  core::RottnestOptions options;
  options.index_dir = std::string("idx/") + column;
  options.fm.block_size = 16 << 10;
  options.fm.sample_rate = 8;
  format::WriterOptions writer;
  writer.target_page_bytes = 32 << 10;

  auto env = Env::Create(spec, options, writer);
  (void)env->client->Index(column, type);

  // Further increments: append + index each (the paper's steady-state
  // ingestion pattern before compaction runs).
  workload::TextGenerator text(spec.seed + 1);
  workload::UuidGenerator ids(spec.seed, spec.uuid_bytes);
  workload::VectorGenerator vecs(spec.seed, spec.vector_dim);
  uint64_t next_row = rows_per_file;
  for (size_t f = 1; f < files; ++f) {
    format::RowBatch batch;
    batch.schema = workload::DatasetSchema(spec);
    format::ColumnVector::Ints ts;
    format::FlatFixed uuid_col;
    uuid_col.elem_size = static_cast<uint32_t>(spec.uuid_bytes);
    format::ColumnVector::Strings bodies;
    format::FlatFixed vec_col;
    vec_col.elem_size = spec.vector_dim * 4;
    for (size_t i = 0; i < rows_per_file; ++i, ++next_row) {
      ts.push_back(static_cast<int64_t>(next_row));
      std::string id = ids.IdFor(next_row);
      uuid_col.Append(Slice(id));
      bodies.push_back(text.Document(doc_chars));
      std::vector<float> v = vecs.VectorFor(next_row);
      vec_col.Append(Slice(reinterpret_cast<const uint8_t*>(v.data()),
                           v.size() * 4));
    }
    batch.columns.emplace_back(std::move(ts));
    batch.columns.emplace_back(std::move(uuid_col));
    batch.columns.emplace_back(std::move(bodies));
    batch.columns.emplace_back(std::move(vec_col));
    (void)env->table->Append(batch);
    (void)env->client->Index(column, type);
  }

  auto measure = [&]() {
    if (type == IndexType::kFm) {
      workload::TextGenerator sampler(spec.seed + 1);
      std::vector<std::string> patterns;
      for (int i = 0; i < 4; ++i) patterns.push_back(sampler.SamplePattern(1));
      return MeasureSubstring(env.get(), column, patterns, 10).latency_s;
    }
    std::vector<std::string> values;
    for (int i = 0; i < 8; ++i) {
      values.push_back(ids.IdFor(i * 337 % (files * rows_per_file)));
    }
    return MeasureUuid(env.get(), column, values, 10).latency_s;
  };

  Row row;
  row.files = files;
  row.live_indexes_before =
      env->client->metadata().ReadAll().MoveValue().size();
  row.uncompacted_s = measure();
  (void)env->client->Compact(column, type);
  row.live_indexes_after =
      env->client->metadata().ReadAll().MoveValue().size();
  row.compacted_s = measure();
  return row;
}

void Report(const char* title, const char* column, IndexType type,
            size_t rows_per_file, size_t doc_chars) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%12s %14s %14s %14s %10s\n", "data_files",
              "index_files", "uncompacted_s", "compacted_s", "speedup");
  for (size_t files : {2, 8, 24, 48}) {
    Row r = RunOne(column, type, files, rows_per_file, doc_chars);
    std::printf("%12zu %8zu -> %2zu %14.3f %14.3f %9.1fx\n", r.files,
                r.live_indexes_before, r.live_indexes_after,
                r.uncompacted_s, r.compacted_s,
                r.uncompacted_s / r.compacted_s);
  }
}

}  // namespace
}  // namespace rottnest::bench

int main() {
  using namespace rottnest::bench;
  PrintHeader("Figure 13",
              "search latency: uncompacted vs compacted index files");
  Report("(a) substring search", "body", rottnest::index::IndexType::kFm,
         200, 300);
  Report("(b) UUID search", "uuid", rottnest::index::IndexType::kTrie, 2000,
         24);
  std::printf("\n(paper: compaction flattens latency growth; post-"
              "compaction latency is ~constant in dataset size — the "
              "scale-invariant cpq_r of §VII-D2)\n");
  return 0;
}
