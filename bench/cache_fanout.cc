// Measures the client-side CachingStore + multi-index search fan-out:
//
//   (1) Hot vs cold query latency: a cold query pays the full S3-projected
//       round trips; a hot query's index components (and probed pages) are
//       all served from the client cache, so it pays CPU only. Physical
//       requests are taken from the backing store's IoStats — the hot pass
//       must show ZERO object-store GETs.
//   (2) Dependent-round depth: with N index files per plan, the fan-out
//       planner runs the per-index chains concurrently and merges their
//       traces (depth = max of chains), where a serial planner would pay
//       the chains back to back (depth ~ sum).
//
// Results are printed as a report and recorded into BENCH_cache.json.
#include <atomic>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/json.h"
#include "obs/obs_context.h"
#include "workload/generators.h"

namespace rottnest::bench {
namespace {

using index::IndexType;
using objectstore::IoTrace;

constexpr size_t kFiles = 6;         // Index files per multi-index plan.
constexpr size_t kRowsPerFile = 5000;
constexpr size_t kQueries = 16;

format::Schema UuidSchema() {
  format::Schema s;
  s.columns.push_back({"uuid", format::PhysicalType::kFixedLenByteArray, 16});
  return s;
}

/// A lake whose uuid column is covered by `files` separate index files
/// (append + index per batch, no compaction), so a search plan fans out
/// across `files` concurrent index chains.
struct World {
  SimulatedClock clock;
  std::unique_ptr<objectstore::InMemoryObjectStore> store;
  std::unique_ptr<lake::Table> table;
  std::unique_ptr<core::Rottnest> client;
};

std::unique_ptr<World> BuildWorld(size_t files, uint64_t cache_bytes) {
  auto w = std::make_unique<World>();
  w->store = std::make_unique<objectstore::InMemoryObjectStore>(&w->clock);
  format::WriterOptions writer;
  writer.target_page_bytes = 16 << 10;
  writer.target_row_group_bytes = 1 << 20;
  w->table = lake::Table::Create(w->store.get(), "lake/data", UuidSchema(),
                                 writer)
                 .MoveValue();
  core::RottnestOptions options;
  options.index_dir = "idx/cache";
  options.cache_bytes = cache_bytes;
  w->client = std::make_unique<core::Rottnest>(w->store.get(),
                                               w->table.get(), options);
  workload::UuidGenerator ids(42);
  for (size_t f = 0; f < files; ++f) {
    format::RowBatch b;
    b.schema = UuidSchema();
    format::FlatFixed uuids;
    uuids.elem_size = 16;
    for (size_t i = 0; i < kRowsPerFile; ++i) {
      std::string u = ids.IdFor(f * kRowsPerFile + i);
      uuids.Append(Slice(u));
    }
    b.columns.emplace_back(std::move(uuids));
    if (!w->table->Append(b).ok()) std::abort();
    if (!w->client->Index("uuid", IndexType::kTrie).ok()) std::abort();
  }
  return w;
}

size_t MeasureDepth(World* w, const std::string& value) {
  IoTrace trace;
  core::SearchOptions opts;
  opts.trace = &trace;
  auto r = w->client->SearchUuid("uuid", Slice(value), 5, opts);
  if (!r.ok()) std::abort();
  return trace.depth();
}

}  // namespace
}  // namespace rottnest::bench

int main() {
  using namespace rottnest;
  using namespace rottnest::bench;

  PrintHeader("BENCH_cache",
              "Client-side cache + multi-index search fan-out");
  objectstore::S3Model s3;
  workload::UuidGenerator ids(42);

  // --- (2) Dependent-round depth: fan-out vs projected serial planner. ---
  auto solo = BuildWorld(1, 0);
  size_t depth_single = MeasureDepth(solo.get(), ids.IdFor(123));
  auto multi = BuildWorld(kFiles, 0);
  size_t depth_fanout = MeasureDepth(multi.get(), ids.IdFor(123));
  // A serial planner pays each index chain back to back before the final
  // page-probe round; the fan-out planner pays max(chains) + probe.
  size_t depth_serial = kFiles * (depth_single - 1) + 1;
  std::printf("depth: single-index chain %zu rounds; %zu-index plan "
              "fan-out %zu rounds (serial projection %zu)\n",
              depth_single, kFiles, depth_fanout, depth_serial);

  // --- (1) Hot vs cold latency with the cache enabled. ---
  //
  // A hot query still re-reads the MUTABLE state — txn log and index
  // metadata — to resolve the latest snapshot; those reads are uncacheable
  // by design and are reported separately. Every IMMUTABLE read (index
  // components, page tables, data pages) must come from the cache: the
  // probe below counts physical GETs against `.index` objects and the
  // cache layer's own IoStats count physical reads through the cache —
  // both must be zero when hot.
  auto w = BuildWorld(kFiles, 256 << 20);
  // Mirror the measured world's store + cache counters into the registry
  // snapshotted at the bottom of BENCH_cache.json, and give the measured
  // queries an ObsContext so op.search_uuid.count lands there too.
  obs::MetricsRegistry registry;
  w->store->AttachMetrics(&registry);
  w->client->cache()->AttachMetrics(&registry);
  obs::ObsContext obs;
  obs.metrics = &registry;
  std::atomic<uint64_t> index_object_gets{0};
  w->store->SetFailurePoint(
      [&index_object_gets](const std::string& op, const std::string& key) {
        if (op == "get" && key.size() >= 6 &&
            key.compare(key.size() - 6, 6, ".index") == 0) {
          index_object_gets.fetch_add(1);
        }
        return Status::OK();
      });
  double cold_ms = 0, hot_ms = 0;
  uint64_t cold_gets = 0, hot_meta_gets = 0, hot_index_gets = 0;
  uint64_t hot_cached_reads = 0;  // Physical GETs issued BY the cache, hot.
  uint64_t cold_misses = 0, hot_hits = 0, hot_misses = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    std::string value = ids.IdFor((q * 1777) % (kFiles * kRowsPerFile));
    // Cold: first touch of this query's index components and pages.
    {
      IoTrace trace;
      core::SearchOptions opts;
      opts.trace = &trace;
      opts.obs = &obs;
      uint64_t before = w->store->stats().gets.load();
      core::SearchResult result;
      double cpu = TimeSeconds([&] {
        auto r = w->client->SearchUuid("uuid", Slice(value), 5, opts);
        if (!r.ok() || r.value().matches.empty()) std::abort();
        result = std::move(r).value();
      });
      cold_gets += w->store->stats().gets.load() - before;
      cold_misses += result.stats.cache_misses;
      cold_ms += trace.ProjectedLatencyMs(s3) + cpu * 1000.0;
    }
    // Hot: identical query again; all immutable reads served locally, so
    // the S3 projection drops to the snapshot-resolution metadata reads
    // (a constant 2 dependent rounds: txn log, then metadata log).
    {
      core::SearchOptions opts;
      opts.obs = &obs;
      uint64_t before = w->store->stats().gets.load();
      uint64_t idx_before = index_object_gets.load();
      uint64_t cache_before = w->client->cache()->stats().gets.load();
      core::SearchResult result;
      double cpu = TimeSeconds([&] {
        auto r = w->client->SearchUuid("uuid", Slice(value), 5, opts);
        if (!r.ok() || r.value().matches.empty()) std::abort();
        result = std::move(r).value();
      });
      hot_meta_gets += w->store->stats().gets.load() - before;
      hot_index_gets += index_object_gets.load() - idx_before;
      hot_cached_reads += w->client->cache()->stats().gets.load() -
                          cache_before;
      hot_hits += result.stats.cache_hits;
      hot_misses += result.stats.cache_misses;
      hot_ms += cpu * 1000.0 + 2.0 * s3.ttfb_ms;
    }
  }
  w->store->SetFailurePoint({});
  double n = static_cast<double>(kQueries);
  std::printf("cold: %.2f ms/query, %.1f physical GETs/query, "
              "%.1f cache misses/query\n",
              cold_ms / n, cold_gets / n, cold_misses / n);
  std::printf("hot:  %.2f ms/query, %.1f metadata GETs/query, "
              "%.1f index-component GETs/query, %.1f cache hits/query, "
              "%.1f misses/query\n",
              hot_ms / n, hot_meta_gets / n, hot_index_gets / n,
              hot_hits / n, hot_misses / n);
  const auto& cache_stats = w->client->cache()->stats();
  std::printf("cache: %llu resident bytes, %llu evictions\n",
              static_cast<unsigned long long>(cache_stats.cache_bytes.load()),
              static_cast<unsigned long long>(
                  cache_stats.cache_evictions.load()));
  if (hot_index_gets != 0 || hot_cached_reads != 0 || hot_misses != 0) {
    std::fprintf(stderr,
                 "FAIL: hot queries were not fully cached (%llu index GETs, "
                 "%llu cache-layer GETs, %llu misses; want 0)\n",
                 static_cast<unsigned long long>(hot_index_gets),
                 static_cast<unsigned long long>(hot_cached_reads),
                 static_cast<unsigned long long>(hot_misses));
    return 1;
  }

  Json::Object root;
  root["files"] = Json(static_cast<uint64_t>(kFiles));
  root["rows_per_file"] = Json(static_cast<uint64_t>(kRowsPerFile));
  root["queries"] = Json(static_cast<uint64_t>(kQueries));
  root["cold_ms_per_query"] = Json(cold_ms / n);
  root["hot_ms_per_query"] = Json(hot_ms / n);
  root["cold_physical_gets_per_query"] = Json(cold_gets / n);
  root["hot_metadata_gets_per_query"] = Json(hot_meta_gets / n);
  root["hot_index_component_gets_per_query"] = Json(hot_index_gets / n);
  root["hot_cache_hits_per_query"] = Json(hot_hits / n);
  root["hot_cache_misses_per_query"] = Json(hot_misses / n);
  root["depth_single_index"] = Json(static_cast<uint64_t>(depth_single));
  root["depth_fanout"] = Json(static_cast<uint64_t>(depth_fanout));
  root["depth_serial_projection"] = Json(static_cast<uint64_t>(depth_serial));
  WriteBenchJson("BENCH_cache.json", std::move(root), &registry);
  return 0;
}
