#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace rottnest::bench {

double TimeSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

std::unique_ptr<Env> Env::Create(const workload::DatasetSpec& spec,
                                 const core::RottnestOptions& options,
                                 const format::WriterOptions& writer) {
  auto env = std::make_unique<Env>();
  env->spec = spec;
  env->store =
      std::make_unique<objectstore::InMemoryObjectStore>(&env->clock);
  auto table =
      workload::BuildDataset(env->store.get(), "lake/data", spec, writer);
  if (!table.ok()) {
    std::fprintf(stderr, "dataset build failed: %s\n",
                 table.status().ToString().c_str());
    std::abort();
  }
  env->table = std::move(table).value();
  env->client = std::make_unique<core::Rottnest>(env->store.get(),
                                                 env->table.get(), options);
  auto snap = env->table->GetSnapshot();
  env->data_bytes = snap.ok() ? snap.value().TotalBytes() : 0;
  return env;
}

Status Env::IndexAndCompact(const std::string& column,
                            index::IndexType type) {
  Status status;
  index_build_s += TimeSeconds([&] {
    auto report = client->Index(column, type);
    if (!report.ok()) {
      status = report.status();
      return;
    }
    auto compacted = client->Compact(column, type);
    if (!compacted.ok()) status = compacted.status();
  });
  index_bytes = MeasureIndexBytes();
  return status;
}

uint64_t Env::MeasureIndexBytes() const {
  std::vector<objectstore::ObjectMeta> listing;
  if (!store->List(client->options().index_dir + "/", &listing).ok()) {
    return 0;
  }
  // Count only live (committed) index files.
  auto entries = const_cast<core::Rottnest*>(client.get())
                     ->metadata()
                     .ReadAll();
  if (!entries.ok()) return 0;
  std::set<std::string> live;
  for (const auto& e : entries.value()) live.insert(e.index_path);
  uint64_t total = 0;
  for (const auto& obj : listing) {
    if (live.count(obj.key)) total += obj.size;
  }
  return total;
}

namespace {

QueryMeasurement Average(const std::vector<QueryMeasurement>& ms) {
  QueryMeasurement avg;
  for (const auto& m : ms) {
    avg.latency_s += m.latency_s;
    avg.gets += m.gets;
    avg.matches += m.matches;
  }
  if (!ms.empty()) {
    avg.latency_s /= static_cast<double>(ms.size());
    avg.gets /= static_cast<double>(ms.size());
  }
  return avg;
}

}  // namespace

QueryMeasurement MeasureSubstring(Env* env, const std::string& column,
                                  const std::vector<std::string>& patterns,
                                  size_t k) {
  std::vector<QueryMeasurement> ms;
  for (const std::string& pattern : patterns) {
    objectstore::IoTrace trace;
    core::SearchOptions opts;
    opts.trace = &trace;
    QueryMeasurement m;
    double cpu = TimeSeconds([&] {
      auto r = env->client->SearchSubstring(column, pattern, k, opts);
      if (r.ok()) m.matches = r.value().matches.size();
    });
    m.latency_s = trace.ProjectedLatencyMs(env->s3) / 1000.0 + cpu;
    m.gets = static_cast<double>(trace.total_gets());
    ms.push_back(m);
  }
  return Average(ms);
}

QueryMeasurement MeasureUuid(Env* env, const std::string& column,
                             const std::vector<std::string>& values,
                             size_t k) {
  std::vector<QueryMeasurement> ms;
  for (const std::string& value : values) {
    objectstore::IoTrace trace;
    core::SearchOptions opts;
    opts.trace = &trace;
    QueryMeasurement m;
    double cpu = TimeSeconds([&] {
      auto r = env->client->SearchUuid(column, Slice(value), k, opts);
      if (r.ok()) m.matches = r.value().matches.size();
    });
    m.latency_s = trace.ProjectedLatencyMs(env->s3) / 1000.0 + cpu;
    m.gets = static_cast<double>(trace.total_gets());
    ms.push_back(m);
  }
  return Average(ms);
}

VectorMeasurement MeasureVector(
    Env* env, const std::string& column,
    const std::vector<std::vector<float>>& queries, size_t k, uint32_t nprobe,
    uint32_t refine,
    const std::vector<std::vector<std::pair<std::string, uint64_t>>>*
        ground_truth) {
  VectorMeasurement total;
  size_t recall_hits = 0, recall_denom = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    objectstore::IoTrace trace;
    core::SearchOptions opts;
    opts.trace = &trace;
    opts.params.vector = {nprobe, refine};
    std::vector<core::RowMatch> matches;
    double cpu = TimeSeconds([&] {
      auto r = env->client->SearchVector(
          column, queries[q].data(),
          static_cast<uint32_t>(queries[q].size()), k, opts);
      if (r.ok()) matches = std::move(r.value().matches);
    });
    total.latency_s += trace.ProjectedLatencyMs(env->s3) / 1000.0 + cpu;
    total.gets += static_cast<double>(trace.total_gets());
    total.matches += matches.size();
    if (ground_truth != nullptr) {
      std::set<std::pair<std::string, uint64_t>> got;
      for (const auto& m : matches) got.insert({m.file, m.row});
      for (const auto& truth : (*ground_truth)[q]) {
        ++recall_denom;
        if (got.count(truth)) ++recall_hits;
      }
    }
  }
  if (!queries.empty()) {
    total.latency_s /= static_cast<double>(queries.size());
    total.gets /= static_cast<double>(queries.size());
  }
  total.recall = recall_denom == 0
                     ? 0
                     : static_cast<double>(recall_hits) / recall_denom;
  return total;
}

double MeasureBruteForceSubstring(Env* env, const std::string& pattern,
                                  size_t workers) {
  baseline::BruteForceOptions options;
  options.workers = workers;
  baseline::BruteForceEngine engine(env->store.get(), env->table.get(),
                                    options, env->s3);
  auto r = engine.SearchSubstring("body", pattern, 100);
  return r.ok() ? r.value().projected_latency_s : 0;
}

double MeasureBruteForceUuid(Env* env, const std::string& value,
                             size_t workers) {
  baseline::BruteForceOptions options;
  options.workers = workers;
  baseline::BruteForceEngine engine(env->store.get(), env->table.get(),
                                    options, env->s3);
  auto r = engine.SearchUuid("uuid", Slice(value), 100);
  return r.ok() ? r.value().projected_latency_s : 0;
}

double MeasureBruteForceVector(Env* env, const std::vector<float>& query,
                               size_t workers) {
  baseline::BruteForceOptions options;
  options.workers = workers;
  baseline::BruteForceEngine engine(env->store.get(), env->table.get(),
                                    options, env->s3);
  auto r = engine.SearchVector("vec", query.data(),
                               static_cast<uint32_t>(query.size()), 10);
  return r.ok() ? r.value().projected_latency_s : 0;
}

std::vector<std::vector<std::pair<std::string, uint64_t>>> VectorGroundTruth(
    Env* env, const std::vector<std::vector<float>>& queries, size_t k) {
  baseline::BruteForceOptions options;
  baseline::BruteForceEngine engine(env->store.get(), env->table.get(),
                                    options, env->s3);
  std::vector<std::vector<std::pair<std::string, uint64_t>>> truth;
  for (const auto& q : queries) {
    auto r = engine.SearchVector("vec", q.data(),
                                 static_cast<uint32_t>(q.size()), k);
    std::vector<std::pair<std::string, uint64_t>> rows;
    if (r.ok()) {
      for (const auto& m : r.value().matches) rows.push_back({m.file, m.row});
    }
    truth.push_back(std::move(rows));
  }
  return truth;
}

void PrintHeader(const std::string& figure, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

bool WriteBenchJson(const std::string& path, Json::Object root,
                    const obs::MetricsRegistry* registry) {
  if (registry != nullptr) {
    root["metrics_snapshot"] = registry->SnapshotJson();
  } else {
    obs::MetricsRegistry empty;
    root["metrics_snapshot"] = empty.SnapshotJson();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    return false;
  }
  std::string text = Json(root).Dump();
  std::fputs(text.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace rottnest::bench
