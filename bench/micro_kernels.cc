// google-benchmark microbenchmarks of the CPU kernels underneath Rottnest:
// compression, suffix-array construction, page encode/decode, k-means,
// hashing and varint coding. These bound the compute side of ic_r and
// cpq_r in the TCO model. Also verifies the observability layer's
// off-by-default contract: with no ObsContext, the instrumented hot paths
// perform ZERO heap allocations (counted via a global operator new
// override in this TU).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "compress/lz.h"
#include "core/obs_internal.h"
#include "format/page.h"
#include "index/fm/suffix_array.h"
#include "index/ivfpq/kmeans.h"
#include "objectstore/object_store.h"
#include "obs/metrics.h"
#include "obs/span.h"

// Counts every heap allocation in the process — the obs-off benchmark
// below asserts the instrumented paths add none.
static std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rottnest {
namespace {

Buffer MakeTextLike(size_t size, uint64_t seed) {
  Random rng(seed);
  static const char* words[] = {"error", "lake", "index", "page",
                                "vector", "scan", "query", "shard"};
  Buffer out;
  out.reserve(size + 8);
  while (out.size() < size) {
    const char* w = words[rng.NextZipf(8, 1.1)];
    while (*w) out.push_back(static_cast<uint8_t>(*w++));
    out.push_back(' ');
  }
  out.resize(size);
  return out;
}

void BM_LzCompressText(benchmark::State& state) {
  Buffer input = MakeTextLike(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    Buffer out = compress::LzCompress(Slice(input));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzCompressText)->Arg(64 << 10)->Arg(1 << 20);

void BM_LzDecompressText(benchmark::State& state) {
  Buffer input = MakeTextLike(static_cast<size_t>(state.range(0)), 1);
  Buffer compressed = compress::LzCompress(Slice(input));
  Buffer out;
  for (auto _ : state) {
    (void)compress::LzDecompress(Slice(compressed), input.size(), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzDecompressText)->Arg(64 << 10)->Arg(1 << 20);

void BM_SuffixArrayBuild(benchmark::State& state) {
  Buffer text = MakeTextLike(static_cast<size_t>(state.range(0)), 2);
  for (auto& b : text) {
    if (b == 0) b = 1;
  }
  text.push_back(0);
  for (auto _ : state) {
    auto sa = index::BuildSuffixArray(Slice(text));
    benchmark::DoNotOptimize(sa.value().data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixArrayBuild)->Arg(64 << 10)->Arg(512 << 10);

void BM_PageEncodeDecode(benchmark::State& state) {
  Random rng(3);
  format::ColumnVector::Strings values;
  for (int i = 0; i < 1000; ++i) {
    std::string v;
    for (int w = 0; w < 20; ++w) {
      v += "tok" + std::to_string(rng.Uniform(500)) + " ";
    }
    values.push_back(std::move(v));
  }
  format::ColumnVector col(values);
  format::ColumnSchema schema{"body", format::PhysicalType::kByteArray, 0};
  for (auto _ : state) {
    Buffer page;
    format::EncodePage(col, 0, col.size(), compress::Codec::kLz, &page);
    format::ColumnVector decoded;
    (void)format::DecodePage(Slice(page), schema, &decoded);
    benchmark::DoNotOptimize(decoded.size());
  }
}
BENCHMARK(BM_PageEncodeDecode);

void BM_KMeansIteration(benchmark::State& state) {
  Random rng(4);
  size_t n = 4000, dim = 64;
  std::vector<float> data(n * dim);
  for (auto& f : data) f = static_cast<float>(rng.NextGaussian());
  for (auto _ : state) {
    auto result = index::TrainKMeans(data.data(), n, dim, 64, 2, 7);
    benchmark::DoNotOptimize(result.value().centroids.data());
  }
}
BENCHMARK(BM_KMeansIteration);

void BM_Hash64(benchmark::State& state) {
  Buffer data = MakeTextLike(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash64(Slice(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Hash64)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_VarintRoundTrip(benchmark::State& state) {
  Random rng(6);
  std::vector<uint64_t> values(10000);
  for (auto& v : values) v = rng.Next() >> rng.Uniform(64);
  for (auto _ : state) {
    Buffer buf;
    for (uint64_t v : values) PutVarint64(&buf, v);
    Decoder dec{Slice(buf)};
    uint64_t out, sum = 0;
    while (!dec.exhausted()) {
      (void)dec.GetVarint64(&out);
      sum += out;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_VarintRoundTrip);

// The off-by-default acceptance gate: one pass over every instrumented
// primitive with observability OFF — null metric handles, null tracer,
// null ObsContext through OpObs/OpPhase, and a store GET with no metrics
// attached — must touch the heap zero times per iteration.
void BM_ObsOffHotPathZeroAlloc(benchmark::State& state) {
  SimulatedClock clock;
  objectstore::InMemoryObjectStore store(&clock);
  const std::string key = "k";
  Buffer payload(256, 0x5a);
  if (!store.Put(key, Slice(payload)).ok()) std::abort();
  Buffer out;
  if (!store.Get(key, &out).ok()) std::abort();  // Warm `out`'s capacity.

  uint64_t allocs = 0;
  for (auto _ : state) {
    uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    // Null-safe emission helpers (the store/retry/fault emission sites).
    obs::Add(static_cast<obs::Counter*>(nullptr), 42);
    obs::Increment(static_cast<obs::Counter*>(nullptr));
    obs::Record(static_cast<obs::Histogram*>(nullptr), 4096);
    // A span with tracing off.
    obs::ScopedSpan span(nullptr, &clock, "op", obs::kNoSpan);
    span.AddIo(obs::SpanIo{});
    // A whole operation's instrumentation under a null ObsContext.
    {
      core::internal::OpObs op(&store, nullptr, nullptr, "bench");
      core::internal::OpPhase phase(&op, "plan");
      op.Finish();
    }
    // An instrumented physical read with no metrics attached.
    if (!store.Get(key, &out).ok()) std::abort();
    benchmark::DoNotOptimize(out.data());
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
  }
  state.counters["heap_allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  if (allocs != 0) {
    state.SkipWithError("obs-off hot path allocated on the heap");
  }
}
BENCHMARK(BM_ObsOffHotPathZeroAlloc);

}  // namespace
}  // namespace rottnest

BENCHMARK_MAIN();
