// Serving bench: the SAME multi-tenant closed-loop workload (identical
// query sequence — the workload is a pure function of its seed) through two
// QueryEngines over a store with REAL per-op latency, once with batching
// off (batch_max=1: every query is its own wave) and once with GET waves
// sized to the client concurrency (batch_max=12): concurrent queries
// coalesce their index-block fetches via the cache's wave ledger.
//
// Acceptance gates (exit non-zero on failure):
//   * batching cuts physical index GETs by >= 2x at equal offered load,
//   * batched p99 latency is no worse than unbatched,
//   * both runs reconcile EXACTLY: every per-query traced GET is accounted
//     for by one cache outcome (hits + misses + coalesced + wave_hits),
//     with zero errors and zero sheds.
// Results land in BENCH_serve.json (schema-checked by
// tools/check_bench_json.py).
#include <cstdio>
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "common/json.h"
#include "objectstore/fault_injection.h"
#include "serve/query_engine.h"
#include "workload/multi_tenant.h"

namespace rottnest::bench {
namespace {

using objectstore::FaultInjectingStore;
using objectstore::FaultOptions;
using objectstore::InMemoryObjectStore;
using serve::QueryEngine;
using serve::ServeOptions;
using workload::DatasetSpec;
using workload::MultiTenantSpec;

constexpr Micros kBaseLatency = 150;  ///< Every store op (real wall time).

DatasetSpec Spec() {
  DatasetSpec spec;
  spec.total_rows = 4000;
  spec.num_files = 4;
  spec.doc_chars = 100;
  spec.vector_dim = 16;
  return spec;
}

core::RottnestOptions Options() {
  core::RottnestOptions options;
  options.index_dir = "idx/serve";
  options.fm.block_size = 4096;
  options.fm.sample_rate = 8;
  options.ivfpq.nlist = 16;
  options.ivfpq.num_subquantizers = 4;
  // A cache too small to retain the working set across queries: sharing
  // must come from in-flight coalescing and the wave ledger, exactly what
  // batching adds. Heads stay uncached so the cache counters cover byte
  // reads only and the per-query traces reconcile EXACTLY against them.
  options.cache_bytes = 8 << 10;
  options.cache_heads = false;
  return options;
}

MultiTenantSpec WorkloadSpec() {
  MultiTenantSpec mt;
  mt.dataset = Spec();
  mt.tenants = 4;
  // Enough concurrent closed-loop clients that a full wave usually holds
  // several queries of EACH kind in the four-kind mix below — wave-mates
  // only share blocks with same-kind neighbors.
  mt.clients = 12;
  mt.requests_per_client = 25;
  mt.k = 4;
  // A hot, heavily skewed needle set: the serving regime batching is built
  // for — concurrent queries repeatedly ask about the same few values, so
  // wave members touch the same index blocks.
  mt.value_zipf_s = 1.5;
  mt.hot_values = 8;
  // Mix in keyword queries so the loop exercises all five index-backed
  // kinds through the same wave ledger (rebalanced out of substring).
  // Kept a modest share: every extra kind in a wave dilutes the block
  // overlap between wave-mates, and this bench's gate is about sharing.
  mt.w_uuid = 0.35;
  mt.w_substring = 0.35;
  mt.w_keyword = 0.10;
  return mt;
}

struct RunResult {
  workload::ServeLoopReport report;
  uint64_t physical_gets = 0;  ///< Cache misses: GETs that hit the store.
  uint64_t logical_gets = 0;   ///< hits + misses + coalesced + wave_hits.
  uint64_t wave_hits = 0;
  uint64_t coalesced = 0;
  uint64_t waves = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
};

/// One cold-start serving run: fresh store stack, fresh client, fresh
/// engine, the identical workload.
bool RunOnce(size_t batch_max, obs::MetricsRegistry* registry,
             RunResult* out) {
  SimulatedClock clock;
  InMemoryObjectStore mem(&clock);
  auto table_r = workload::BuildDataset(&mem, "lake/serve", Spec());
  if (!table_r.ok()) {
    std::fprintf(stderr, "FAIL: dataset: %s\n",
                 table_r.status().ToString().c_str());
    return false;
  }
  auto table = std::move(table_r).value();
  {
    // Build the indexes against the bare store: setup pays no latency.
    core::Rottnest setup(&mem, table.get(), Options());
    for (auto [column, type] :
         {std::pair<const char*, index::IndexType>{"uuid",
                                                   index::IndexType::kTrie},
          {"body", index::IndexType::kFm},
          {"body", index::IndexType::kKeyword},
          {"vec", index::IndexType::kIvfPq}}) {
      Status s = setup.Index(column, type).status();
      if (!s.ok()) {
        std::fprintf(stderr, "FAIL: index %s: %s\n", column,
                     s.ToString().c_str());
        return false;
      }
    }
  }

  FaultOptions fopts;
  fopts.seed = 20260809;
  fopts.base_latency_micros = kBaseLatency;  // REAL sleeps: wall p99.
  FaultInjectingStore slow(&mem, fopts);
  core::Rottnest client(&slow, table.get(), Options());

  ServeOptions sopts;
  sopts.batch_max = batch_max;
  QueryEngine engine(&client, sopts);
  if (registry != nullptr) engine.AttachMetrics(registry);

  workload::MultiTenantWorkload workload(WorkloadSpec());
  out->report = workload::RunServeLoop(&engine, workload,
                                       /*trace_requests=*/true);
  engine.Shutdown();  // Joins the dispatcher: every wave is closed.

  const objectstore::IoStats& cs = client.cache()->stats();
  out->physical_gets = cs.cache_misses.load();
  out->wave_hits = cs.cache_wave_hits.load();
  out->coalesced = cs.cache_coalesced.load();
  out->logical_gets = cs.cache_hits.load() + cs.cache_misses.load() +
                      out->coalesced + out->wave_hits;
  out->waves = engine.stats().waves.load();
  out->p50 =
      workload::PercentileMicros(out->report.overall.latencies_micros, 0.5);
  out->p99 =
      workload::PercentileMicros(out->report.overall.latencies_micros, 0.99);

  const uint64_t total = out->report.overall.total();
  const uint64_t expected =
      static_cast<uint64_t>(WorkloadSpec().clients) *
      static_cast<uint64_t>(WorkloadSpec().requests_per_client);
  if (total != expected || out->report.overall.errors != 0 ||
      out->report.overall.shed != 0) {
    std::fprintf(stderr,
                 "FAIL: batch_max=%zu run: %llu/%llu answered, %llu errors, "
                 "%llu shed\n",
                 batch_max, static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(expected),
                 static_cast<unsigned long long>(out->report.overall.errors),
                 static_cast<unsigned long long>(out->report.overall.shed));
    return false;
  }
  if (engine.stats().submitted.load() != expected ||
      engine.stats().completed.load() != expected) {
    std::fprintf(stderr, "FAIL: batch_max=%zu engine stats disagree\n",
                 batch_max);
    return false;
  }
  // THE reconciliation invariant: Σ per-query traced GETs == Δ(cache hits
  // + misses + coalesced + wave_hits). Exact, or the run is invalid.
  if (out->report.traced_gets != out->logical_gets) {
    std::fprintf(stderr,
                 "FAIL: batch_max=%zu: traced %llu GETs but the cache "
                 "accounted %llu\n",
                 batch_max,
                 static_cast<unsigned long long>(out->report.traced_gets),
                 static_cast<unsigned long long>(out->logical_gets));
    return false;
  }
  return true;
}

}  // namespace

int Main() {
  PrintHeader("serve", "request batching vs per-query GETs");
  const MultiTenantSpec mt = WorkloadSpec();
  const uint64_t queries = static_cast<uint64_t>(mt.clients) *
                           static_cast<uint64_t>(mt.requests_per_client);

  RunResult unbatched, batched;
  obs::MetricsRegistry registry;  // Snapshot from the batched engine.
  if (!RunOnce(/*batch_max=*/1, nullptr, &unbatched)) return 1;
  if (!RunOnce(/*batch_max=*/12, &registry, &batched)) return 1;

  double get_ratio =
      static_cast<double>(batched.physical_gets) /
      static_cast<double>(unbatched.physical_gets ? unbatched.physical_gets
                                                  : 1);
  double p99_ratio = static_cast<double>(batched.p99) /
                     static_cast<double>(unbatched.p99 ? unbatched.p99 : 1);

  std::printf("  %llu queries, %d tenants, %d closed-loop clients, "
              "+%lldus per store op\n",
              static_cast<unsigned long long>(queries), mt.tenants,
              mt.clients, static_cast<long long>(kBaseLatency));
  std::printf("  unbatched: %llu physical GETs, p50 %llu us, p99 %llu us\n",
              static_cast<unsigned long long>(unbatched.physical_gets),
              static_cast<unsigned long long>(unbatched.p50),
              static_cast<unsigned long long>(unbatched.p99));
  std::printf("  batched:   %llu physical GETs, p50 %llu us, p99 %llu us "
              "(%llu waves)\n",
              static_cast<unsigned long long>(batched.physical_gets),
              static_cast<unsigned long long>(batched.p50),
              static_cast<unsigned long long>(batched.p99),
              static_cast<unsigned long long>(batched.waves));
  std::printf("  sharing: %llu wave hits + %llu coalesced of %llu logical\n",
              static_cast<unsigned long long>(batched.wave_hits),
              static_cast<unsigned long long>(batched.coalesced),
              static_cast<unsigned long long>(batched.logical_gets));
  std::printf("  GET ratio %.3fx, p99 ratio %.3fx\n", get_ratio, p99_ratio);

  Json::Object root;
  root["queries"] = Json(queries);
  root["tenants"] = Json(static_cast<uint64_t>(mt.tenants));
  root["clients"] = Json(static_cast<uint64_t>(mt.clients));
  root["base_latency_micros"] = Json(static_cast<uint64_t>(kBaseLatency));
  root["unbatched_gets"] = Json(unbatched.physical_gets);
  root["unbatched_p50_micros"] = Json(unbatched.p50);
  root["unbatched_p99_micros"] = Json(unbatched.p99);
  root["unbatched_traced_gets"] = Json(unbatched.report.traced_gets);
  root["batched_gets"] = Json(batched.physical_gets);
  root["batched_p50_micros"] = Json(batched.p50);
  root["batched_p99_micros"] = Json(batched.p99);
  root["batched_traced_gets"] = Json(batched.report.traced_gets);
  root["batched_waves"] = Json(batched.waves);
  root["batched_wave_hits"] = Json(batched.wave_hits);
  root["batched_coalesced"] = Json(batched.coalesced);
  root["get_ratio"] = Json(get_ratio);
  root["p99_ratio"] = Json(p99_ratio);
  root["reconciled"] = Json(true);  // RunOnce fails the run otherwise.
  WriteBenchJson("BENCH_serve.json", std::move(root), &registry);

  bool ok = true;
  if (get_ratio > 0.5) {
    std::fprintf(stderr,
                 "FAIL: batching cut GETs only to %.3fx (want <= 0.5x)\n",
                 get_ratio);
    ok = false;
  }
  if (p99_ratio > 1.0) {
    std::fprintf(stderr, "FAIL: batched p99 is %.3fx unbatched (want <= 1)\n",
                 p99_ratio);
    ok = false;
  }
  if (batched.wave_hits == 0) {
    std::fprintf(stderr, "FAIL: no wave-ledger hits were ever recorded\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace rottnest::bench

int main() { return rottnest::bench::Main(); }
