// Reproduces Fig 9: phase diagrams for vector search at recall@10 targets
// 0.87 / 0.92 / 0.97. nprobe and refine are tuned per target by a sweep
// against exact ground truth; the headline result is that moving the recall
// target barely moves the phase boundaries on the log-log plot (§VII-B2).
#include <cstdio>

#include "bench/bench_util.h"

namespace rottnest::bench {
namespace {

using index::IndexType;
using workload::DatasetSpec;

struct TunedConfig {
  double target = 0;
  uint32_t nprobe = 0;
  uint32_t refine = 0;
  double recall = 0;
  double latency_s = 0;
  double gets = 0;
};

}  // namespace
}  // namespace rottnest::bench

int main() {
  using namespace rottnest;
  using namespace rottnest::bench;

  DatasetSpec spec;
  spec.total_rows = 20000;
  spec.num_files = 4;
  spec.doc_chars = 24;
  spec.vector_dim = 64;
  core::RottnestOptions options;
  options.index_dir = "idx/vec";
  options.ivfpq.nlist = 128;
  options.ivfpq.num_subquantizers = 8;
  auto env = Env::Create(spec, options, format::WriterOptions{});
  Status st = env->IndexAndCompact("vec", IndexType::kIvfPq);
  if (!st.ok()) std::printf("index failed: %s\n", st.ToString().c_str());

  workload::VectorGenerator vecs(spec.seed, spec.vector_dim);
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(vecs.QueryNear(i * 1237 % spec.total_rows, 1.0));
  }
  auto truth = VectorGroundTruth(env.get(), queries, 10);

  PrintHeader("Figure 9 (tuning)",
              "recall@10 vs (nprobe, refine) sweep");
  std::printf("%7s %7s %8s %10s %8s\n", "nprobe", "refine", "recall",
              "latency_s", "gets");
  std::vector<TunedConfig> sweep;
  for (uint32_t nprobe : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    for (uint32_t refine : {20u, 50u, 100u, 200u, 400u}) {
      VectorMeasurement m =
          MeasureVector(env.get(), "vec", queries, 10, nprobe, refine, &truth);
      std::printf("%7u %7u %8.3f %10.3f %8.0f\n", nprobe, refine, m.recall,
                  m.latency_s, m.gets);
      sweep.push_back({0, nprobe, refine, m.recall, m.latency_s, m.gets});
    }
  }

  // Pick the cheapest config hitting each target.
  std::vector<TunedConfig> picked;
  for (double target : {0.87, 0.92, 0.97}) {
    TunedConfig best;
    best.target = target;
    for (const TunedConfig& c : sweep) {
      if (c.recall + 1e-9 < target) continue;
      if (best.nprobe == 0 || c.latency_s < best.latency_s) {
        best = c;
        best.target = target;
      }
    }
    picked.push_back(best);
  }

  PrintHeader("Figure 9", "phase diagrams per recall target (SIFT-1B scale)");
  double scale = 1e9 / static_cast<double>(spec.total_rows);
  for (const TunedConfig& c : picked) {
    if (c.nprobe == 0) {
      std::printf("recall target %.2f: not reachable in sweep\n", c.target);
      continue;
    }
    tco::MeasuredWorkload m;
    m.data_bytes = static_cast<double>(env->data_bytes);
    m.index_bytes = static_cast<double>(env->index_bytes);
    m.rottnest_query_s = c.latency_s;
    m.rottnest_gets_per_query = c.gets;
    rottnest::baseline::BruteForceOptions bf_opts;
    bf_opts.workers = 8;
    m.brute_force_query_s = rottnest::baseline::BruteForceScanSeconds(
        static_cast<double>(env->data_bytes) * scale, bf_opts, env->s3);
    m.index_build_s = env->index_build_s;
    m.copy_memory_bytes = static_cast<double>(env->data_bytes) * 1.1;
    m.vector_service = true;  // LanceDB on r6g.xlarge.
    tco::CostParams p = tco::DeriveCostParams(m, tco::Pricing{}, scale);

    std::printf("\n--- recall target %.2f: nprobe=%u refine=%u "
                "(achieved %.3f, latency %.3fs) ---\n",
                c.target, c.nprobe, c.refine, c.recall, c.latency_s);
    std::printf("params: cpm_i=$%.2f cpm_bf=$%.2f cpq_bf=$%.4f ic_r=$%.2f "
                "cpm_r=$%.2f cpq_r=$%.6f\n",
                p.cpm_i, p.cpm_bf, p.cpq_bf, p.ic_r, p.cpm_r, p.cpq_r);
    for (double months : {1.0, 10.0}) {
      tco::Boundaries b = tco::ComputeBoundaries(p, months);
      std::printf("  at %5.1f months: rottnest wins %.3g .. %.3g queries "
                  "(%.1f orders)\n",
                  months, b.bf_to_rottnest, b.rottnest_to_copy,
                  tco::RottnestBandOrders(p, months));
    }
    tco::PhaseDiagram d = tco::ComputePhaseDiagram(p, 0.1, 100, 40, 1, 1e9, 16);
    std::printf("%s", tco::RenderPhaseDiagram(d).c_str());
  }
  std::printf("\n(paper: the 0.87 vs 0.97 boundary shift is ~35%% in cpq_r "
              "but barely visible on the log-log plot)\n");
  return 0;
}
