// Tail-latency bench for the hedged-read path: the same point-lookup
// workload against a heavy-tailed store (FaultInjectingStore with REAL
// sleeps — hedging races wall clocks, so simulated time would measure
// nothing), once bare and once through HedgingStore.
//
// Acceptance gates (exit non-zero on failure):
//   * hedging cuts the p99 search latency by >= 2x, and
//   * costs <= 1.2x the physical GETs of the unhedged run
// — the classic tail-at-scale trade: a few percent duplicate requests buy
// back the tail. Results land in BENCH_tail.json (schema-checked by
// tools/check_bench_json.py).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "objectstore/fault_injection.h"
#include "objectstore/hedging_store.h"
#include "workload/driver.h"

namespace rottnest::bench {
namespace {

using objectstore::FaultInjectingStore;
using objectstore::FaultOptions;
using objectstore::HedgeOptions;
using objectstore::HedgingStore;
using objectstore::InMemoryObjectStore;
using workload::DatasetSpec;

constexpr size_t kQueries = 300;
constexpr Micros kBaseLatency = 100;        ///< Every store op (real).
constexpr double kSlowReadRate = 0.03;      ///< Heavy tail fraction.
constexpr Micros kSlowReadLatency = 20'000; ///< The tail: 20ms reads.

DatasetSpec Spec() {
  DatasetSpec spec;
  spec.total_rows = 8000;
  spec.num_files = 4;
  spec.doc_chars = 24;
  spec.vector_dim = 8;
  return spec;
}

core::RottnestOptions Options() {
  core::RottnestOptions options;
  options.index_dir = "idx/tail";
  return options;
}

FaultOptions Faults() {
  FaultOptions fopts;
  fopts.seed = 20260809;
  fopts.base_latency_micros = kBaseLatency;
  fopts.slow_read_rate = kSlowReadRate;
  fopts.slow_read_latency_micros = kSlowReadLatency;
  return fopts;
}

struct RunResult {
  std::vector<uint64_t> latencies_micros;
  uint64_t physical_gets = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
};

/// `kQueries` point lookups of known rows through `client`, wall-timed.
RunResult RunLookups(core::Rottnest* client, InMemoryObjectStore* mem,
                     const DatasetSpec& spec) {
  workload::UuidGenerator ids(spec.seed, spec.uuid_bytes);
  RunResult run;
  uint64_t gets_before = mem->stats().gets.load();
  for (size_t i = 0; i < kQueries; ++i) {
    uint64_t row = (i * 37) % spec.total_rows;
    std::string id = ids.IdFor(row);
    auto start = std::chrono::steady_clock::now();
    auto r = client->SearchUuid("uuid", Slice(id), 4);
    auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (!r.ok() || r.value().matches.size() != 1) {
      std::fprintf(stderr, "FAIL: lookup %zu wrong (%s, %zu matches)\n", i,
                   r.status().ToString().c_str(),
                   r.ok() ? r.value().matches.size() : 0);
      std::exit(1);
    }
    run.latencies_micros.push_back(static_cast<uint64_t>(micros));
  }
  run.physical_gets = mem->stats().gets.load() - gets_before;
  run.p50 = workload::PercentileMicros(run.latencies_micros, 0.5);
  run.p99 = workload::PercentileMicros(run.latencies_micros, 0.99);
  return run;
}

}  // namespace

int Main() {
  PrintHeader("tail", "hedged reads vs the heavy tail");

  SimulatedClock clock;
  InMemoryObjectStore mem(&clock);
  auto table_r = workload::BuildDataset(&mem, "lake/tail", Spec());
  if (!table_r.ok()) {
    std::fprintf(stderr, "FAIL: dataset: %s\n",
                 table_r.status().ToString().c_str());
    return 1;
  }
  auto table = std::move(table_r).value();
  {
    // Build the index against the bare store: setup pays no tail.
    core::Rottnest setup(&mem, table.get(), Options());
    Status s = setup.Index("uuid", index::IndexType::kTrie).status();
    if (!s.ok()) {
      std::fprintf(stderr, "FAIL: index: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Unhedged: lookups straight through the heavy-tailed store.
  FaultInjectingStore slow_bare(&mem, Faults());
  core::Rottnest bare(&slow_bare, table.get(), Options());
  RunResult unhedged = RunLookups(&bare, &mem, Spec());

  // Hedged: the same tail, with HedgingStore racing a second request once
  // a read overstays the observed-latency quantile.
  obs::MetricsRegistry registry;
  FaultInjectingStore slow_hedged(&mem, Faults());
  HedgeOptions hopts;
  hopts.initial_delay_micros = 2'000;  // Until the quantile warms up.
  HedgingStore hedging(&slow_hedged, hopts);
  hedging.AttachMetrics(&registry, "tail");
  core::Rottnest hedged_client(&hedging, table.get(), Options());
  RunResult hedged = RunLookups(&hedged_client, &mem, Spec());
  hedging.Quiesce();

  const auto& hs = hedging.hedge_stats();
  double p99_gain = static_cast<double>(unhedged.p99) /
                    static_cast<double>(hedged.p99 > 0 ? hedged.p99 : 1);
  double get_cost = static_cast<double>(hedged.physical_gets) /
                    static_cast<double>(unhedged.physical_gets > 0
                                            ? unhedged.physical_gets
                                            : 1);

  std::printf("  queries: %zu per run, tail: %.0f%% of reads +%lldus\n",
              kQueries, kSlowReadRate * 100,
              static_cast<long long>(kSlowReadLatency));
  std::printf("  unhedged: p50 %llu us, p99 %llu us, %llu GETs\n",
              static_cast<unsigned long long>(unhedged.p50),
              static_cast<unsigned long long>(unhedged.p99),
              static_cast<unsigned long long>(unhedged.physical_gets));
  std::printf("  hedged:   p50 %llu us, p99 %llu us, %llu GETs\n",
              static_cast<unsigned long long>(hedged.p50),
              static_cast<unsigned long long>(hedged.p99),
              static_cast<unsigned long long>(hedged.physical_gets));
  std::printf("  hedges: %llu issued / %llu won (delay now %lld us)\n",
              static_cast<unsigned long long>(hs.hedges_issued.load()),
              static_cast<unsigned long long>(hs.hedges_won.load()),
              static_cast<long long>(hedging.CurrentHedgeDelayMicros()));
  std::printf("  p99 improvement: %.2fx at %.3fx request cost\n", p99_gain,
              get_cost);

  Json::Object root;
  root["queries"] = Json(static_cast<uint64_t>(kQueries));
  root["slow_read_rate"] = Json(kSlowReadRate);
  root["slow_read_latency_micros"] =
      Json(static_cast<uint64_t>(kSlowReadLatency));
  root["unhedged_p50_micros"] = Json(unhedged.p50);
  root["unhedged_p99_micros"] = Json(unhedged.p99);
  root["unhedged_gets"] = Json(unhedged.physical_gets);
  root["hedged_p50_micros"] = Json(hedged.p50);
  root["hedged_p99_micros"] = Json(hedged.p99);
  root["hedged_gets"] = Json(hedged.physical_gets);
  root["hedges_issued"] = Json(hs.hedges_issued.load());
  root["hedges_won"] = Json(hs.hedges_won.load());
  root["hedge_delay_micros"] =
      Json(static_cast<uint64_t>(hedging.CurrentHedgeDelayMicros()));
  root["p99_improvement"] = Json(p99_gain);
  root["get_cost_ratio"] = Json(get_cost);
  WriteBenchJson("BENCH_tail.json", std::move(root), &registry);

  bool ok = true;
  if (p99_gain < 2.0) {
    std::fprintf(stderr, "FAIL: hedging improved p99 only %.2fx (want >= 2x)\n",
                 p99_gain);
    ok = false;
  }
  if (get_cost > 1.2) {
    std::fprintf(stderr,
                 "FAIL: hedged run cost %.3fx the GETs (want <= 1.2x)\n",
                 get_cost);
    ok = false;
  }
  if (hs.hedges_issued.load() == 0) {
    std::fprintf(stderr, "FAIL: no hedges were ever issued\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace rottnest::bench

int main() { return rottnest::bench::Main(); }
