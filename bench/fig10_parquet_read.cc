// Reproduces Fig 10: (a) S3 byte-range read latency vs request granularity
// at different concurrency levels — flat until ~1MB, then linear, largely
// concurrency-independent until the NIC saturates; (b) reading raw ~300KB
// byte ranges vs reading+decoding real data pages through the custom
// page-granular reader — decompression overhead is negligible next to the
// request latency.
#include <cstdio>

#include "bench/bench_util.h"
#include "format/page_table.h"
#include "format/reader.h"

namespace rottnest::bench {
namespace {

void Fig10a() {
  PrintHeader("Figure 10a",
              "S3 range-read latency (ms) vs granularity and concurrency");
  rottnest::objectstore::S3Model s3;
  std::vector<size_t> concurrency = {1, 8, 64, 512};
  std::printf("%12s", "read_bytes");
  for (size_t c : concurrency) std::printf("  conc=%-6zu", c);
  std::printf("\n");
  for (size_t kb : {1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}) {
    std::printf("%10dKB", static_cast<int>(kb));
    for (size_t c : concurrency) {
      std::printf("  %10.1f", s3.RoundLatencyMs(kb * 1024ull, c));
    }
    std::printf("\n");
  }
  std::printf("\n(parquet pages ~300KB sit in the flat latency-bound "
              "regime; 128MB row groups in the linear throughput-bound "
              "regime)\n");
}

void Fig10b() {
  PrintHeader("Figure 10b",
              "raw 300KB ranges vs real page reads (fetch+decode)");
  // Build a text file whose pages are ~300KB raw.
  workload::DatasetSpec spec;
  spec.total_rows = 4000;
  spec.num_files = 1;
  spec.doc_chars = 1200;
  spec.vector_dim = 8;
  core::RottnestOptions options;
  options.index_dir = "idx/none";
  format::WriterOptions writer;
  writer.target_page_bytes = 300 << 10;
  writer.target_row_group_bytes = 8 << 20;
  auto env = Env::Create(spec, options, writer);

  auto snap = env->table->GetSnapshot().MoveValue();
  auto reader = format::FileReader::Open(env->store.get(),
                                         snap.files[0].path, nullptr)
                    .MoveValue();
  int col = env->table->schema().FindColumn("body");
  format::PageTable table;
  table.AddFile(snap.files[0].path, reader->meta(), col);

  rottnest::objectstore::S3Model s3;
  std::printf("%8s %16s %16s %14s\n", "pages", "raw_range_ms",
              "page_decode_ms", "decode_share");
  for (size_t num_pages : {1, 2, 4, 8}) {
    num_pages = std::min<size_t>(num_pages, table.num_pages());
    // Raw byte ranges: pure IO model on the pages' compressed sizes.
    rottnest::objectstore::IoTrace raw_trace;
    raw_trace.BeginRound();
    for (size_t p = 0; p < num_pages; ++p) {
      raw_trace.RecordGet(table.entry(static_cast<format::PageId>(p)).size);
    }
    double raw_ms = raw_trace.ProjectedLatencyMs(s3);

    // Real page reads: same IO plus measured decode CPU.
    rottnest::objectstore::IoTrace page_trace;
    std::vector<format::PageFetch> fetches;
    for (size_t p = 0; p < num_pages; ++p) {
      fetches.push_back(table.MakeFetch(static_cast<format::PageId>(p)));
    }
    std::vector<format::ColumnVector> decoded;
    double cpu_s = TimeSeconds([&] {
      (void)format::ReadPages(env->store.get(), fetches,
                              env->table->schema().columns[col], nullptr,
                              &page_trace, &decoded);
    });
    double page_ms = page_trace.ProjectedLatencyMs(s3) + cpu_s * 1000.0;
    std::printf("%8zu %16.2f %16.2f %13.1f%%\n", num_pages, raw_ms, page_ms,
                100.0 * (page_ms - raw_ms) / page_ms);
  }
  std::printf("\n(decode overhead stays a small share of total read "
              "latency — the paper's finding that a custom format's more "
              "granular reads would not help)\n");
}

}  // namespace
}  // namespace rottnest::bench

int main() {
  rottnest::bench::Fig10a();
  rottnest::bench::Fig10b();
  return 0;
}
