// Reproduces Fig 8: (a) brute-force latency and (b) cost per query vs
// cluster size; (c) Rottnest latency and (d) cost vs searcher count; plus
// the §VII-A minimum-latency-threshold comparison (Rottnest on ONE worker
// vs brute force on 64).
//
// Brute-force rows are projected at paper scale (304 GB text / 2B hashes /
// SIFT-scale vectors) with the cluster model; Rottnest rows use the
// measured+projected single-instance latency. Rottnest is depth-bound, so
// extra searchers cannot shorten a query — they only multiply cost (the
// paper's "not easily horizontally scalable" finding).
#include <cstdio>

#include "bench/bench_util.h"

namespace rottnest::bench {
namespace {

using index::IndexType;
using workload::DatasetSpec;

constexpr double kHourly = 1.008;  // r6i.4xlarge

struct App {
  const char* name;
  double paper_bytes;       ///< Paper-scale dataset size.
  double rottnest_query_s;  ///< Measured single-instance latency.
  size_t index_files;       ///< Live index files (for the searcher model).
};

App MeasureSubstringApp() {
  DatasetSpec spec;
  spec.total_rows = 5000;
  spec.num_files = 4;
  spec.doc_chars = 500;
  spec.vector_dim = 8;
  core::RottnestOptions options;
  options.index_dir = "idx/sub";
  format::WriterOptions writer;
  writer.target_page_bytes = 64 << 10;
  auto env = Env::Create(spec, options, writer);
  (void)env->IndexAndCompact("body", IndexType::kFm);
  workload::TextGenerator sampler(spec.seed);
  std::vector<std::string> patterns;
  for (int i = 0; i < 6; ++i) patterns.push_back(sampler.SamplePattern(2));
  QueryMeasurement m = MeasureSubstring(env.get(), "body", patterns, 10);
  return {"substring", 304e9, m.latency_s, 1};
}

App MeasureUuidApp() {
  DatasetSpec spec;
  spec.total_rows = 50000;
  spec.num_files = 4;
  spec.doc_chars = 24;
  spec.vector_dim = 8;
  core::RottnestOptions options;
  options.index_dir = "idx/uuid";
  auto env = Env::Create(spec, options, format::WriterOptions{});
  (void)env->IndexAndCompact("uuid", IndexType::kTrie);
  workload::UuidGenerator ids(spec.seed);
  std::vector<std::string> values;
  for (int i = 0; i < 12; ++i) values.push_back(ids.IdFor(i * 997 % 50000));
  QueryMeasurement m = MeasureUuid(env.get(), "uuid", values, 10);
  return {"uuid", 2e9 * 144.0, m.latency_s, 1};  // 2B rows x ~144B/row.
}

App MeasureVectorApp() {
  DatasetSpec spec;
  spec.total_rows = 12000;
  spec.num_files = 4;
  spec.doc_chars = 24;
  spec.vector_dim = 64;
  core::RottnestOptions options;
  options.index_dir = "idx/vec";
  options.ivfpq.nlist = 64;
  options.ivfpq.num_subquantizers = 8;
  auto env = Env::Create(spec, options, format::WriterOptions{});
  (void)env->IndexAndCompact("vec", IndexType::kIvfPq);
  workload::VectorGenerator vecs(spec.seed, spec.vector_dim);
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(vecs.QueryNear(i * 131));
  VectorMeasurement m =
      MeasureVector(env.get(), "vec", queries, 10, 16, 64, nullptr);
  return {"vector", 1e9 * 128 * 4.0, m.latency_s, 1};  // SIFT-1B floats.
}

}  // namespace
}  // namespace rottnest::bench

int main() {
  using namespace rottnest::bench;
  rottnest::objectstore::S3Model s3;

  std::vector<App> apps = {MeasureSubstringApp(), MeasureUuidApp(),
                           MeasureVectorApp()};

  PrintHeader("Figure 8a/8b",
              "brute-force latency and cost per query vs cluster size "
              "(paper-scale projection)");
  std::printf("%-10s %8s %14s %14s\n", "app", "workers", "latency_s",
              "cost_usd/query");
  std::vector<size_t> worker_counts = {1, 2, 4, 8, 16, 32, 64};
  std::vector<double> bf64(apps.size());
  for (size_t a = 0; a < apps.size(); ++a) {
    for (size_t w : worker_counts) {
      rottnest::baseline::BruteForceOptions options;
      options.workers = w;
      double lat =
          rottnest::baseline::BruteForceScanSeconds(apps[a].paper_bytes,
                                                     options, s3);
      double cost = lat * static_cast<double>(w) * kHourly / 3600.0;
      std::printf("%-10s %8zu %14.2f %14.4f\n", apps[a].name, w, lat, cost);
      if (w == 64) bf64[a] = lat;
    }
  }

  PrintHeader("Figure 8c/8d",
              "Rottnest latency and cost per query vs searcher count");
  std::printf("%-10s %9s %14s %14s\n", "app", "searchers", "latency_s",
              "cost_usd/query");
  for (const App& app : apps) {
    for (size_t s : {1, 2, 4, 8}) {
      // Depth-bound: a single query cannot be split below the latency of
      // its dependent request chain; searchers only divide the (already
      // compacted, single-file) index set.
      size_t files_per_searcher =
          (app.index_files + s - 1) / std::max<size_t>(s, 1);
      double lat = app.rottnest_query_s *
                   (static_cast<double>(files_per_searcher) /
                    static_cast<double>(app.index_files));
      double cost = app.rottnest_query_s * static_cast<double>(s) * kHourly /
                    3600.0;
      std::printf("%-10s %9zu %14.3f %14.6f\n", app.name, s, lat, cost);
    }
  }

  PrintHeader("§VII-A", "minimum latency thresholds");
  std::printf("%-10s %22s %22s %8s\n", "app", "rottnest_1worker_s",
              "bruteforce_64workers_s", "speedup");
  for (size_t a = 0; a < apps.size(); ++a) {
    std::printf("%-10s %22.2f %22.2f %7.1fx\n", apps[a].name,
                apps[a].rottnest_query_s, bf64[a],
                bf64[a] / apps[a].rottnest_query_s);
  }
  std::printf("\n(paper: rottnest wins 4.3x / 4.3x / 5.4x; thresholds 4.6s "
              "/ 1.7s / 2.3s)\n");
  return 0;
}
